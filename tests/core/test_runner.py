"""Experiment runner tests."""

import pytest

from repro.core.configs import ConfigName, make_config
from repro.core.runner import ExperimentRunner
from repro.workloads.dgemm import DGEMM
from repro.workloads.gups import GUPS
from repro.workloads.stream import StreamBenchmark


class TestRun:
    def test_feasible_run(self, runner):
        record = runner.run(StreamBenchmark(size_bytes=int(4e9)), ConfigName.HBM)
        assert record.feasible
        assert record.metric == pytest.approx(330e9, rel=0.01)
        assert record.run_result is not None

    def test_hbm_capacity_infeasible(self, runner):
        """Problems over 16 GiB produce the paper's missing red bars."""
        record = runner.run(
            StreamBenchmark(size_bytes=int(20e9)), ConfigName.HBM
        )
        assert not record.feasible
        assert record.metric is None
        assert "NUMA node" in (record.infeasible_reason or "")

    def test_same_size_fits_dram(self, runner):
        record = runner.run(
            StreamBenchmark(size_bytes=int(20e9)), ConfigName.DRAM
        )
        assert record.feasible

    def test_dgemm_256_threads_infeasible(self, runner):
        record = runner.run(DGEMM.from_array_gb(6.0), ConfigName.DRAM, 256)
        assert not record.feasible
        assert "footnote" in (record.infeasible_reason or "")

    def test_accepts_config_objects(self, runner):
        record = runner.run(
            StreamBenchmark(size_bytes=int(1e9)), make_config(ConfigName.CACHE)
        )
        assert record.config is ConfigName.CACHE

    def test_no_leaked_allocations(self, runner):
        """Repeated runs must not exhaust the simulated nodes."""
        w = GUPS.from_table_gb(8.0)
        for _ in range(10):
            assert runner.run(w, ConfigName.HBM).feasible

    def test_record_carries_params(self, runner):
        record = runner.run(GUPS.from_table_gb(1.0), ConfigName.DRAM)
        assert "log2_entries" in record.workload_params
        assert record.metric_name == "GUPS"


class TestRunConfigs:
    def test_default_trio(self, runner):
        records = runner.run_configs(StreamBenchmark(size_bytes=int(2e9)))
        assert [r.config for r in records] == list(ConfigName.paper_trio())

    def test_explicit_configs(self, runner):
        records = runner.run_configs(
            StreamBenchmark(size_bytes=int(2e9)),
            configs=(ConfigName.HYBRID,),
        )
        assert records[0].config is ConfigName.HYBRID
        assert records[0].feasible
