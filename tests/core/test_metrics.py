"""Metric helper tests."""

import pytest

from repro.core.metrics import Metric, harmonic_mean, improvement


class TestImprovement:
    def test_basic(self):
        assert improvement(30.0, 10.0) == 3.0

    def test_none_propagates(self):
        assert improvement(None, 10.0) is None
        assert improvement(10.0, None) is None
        assert improvement(10.0, 0.0) is None


class TestHarmonicMean:
    def test_known_value(self):
        assert harmonic_mean([1.0, 2.0]) == pytest.approx(4.0 / 3.0)

    def test_equal_values(self):
        assert harmonic_mean([5.0, 5.0, 5.0]) == pytest.approx(5.0)

    def test_dominated_by_small(self):
        assert harmonic_mean([1.0, 1000.0]) < 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            harmonic_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])


class TestMetric:
    def test_display_scaled(self):
        m = Metric("CG MFLOPS", "Mflop/s", scale=1e6)
        assert m.display(1.5e10) == "1.5e+04"

    def test_display_missing(self):
        assert Metric("m", "u").display(None) == "-"
