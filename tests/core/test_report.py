"""Study report and energy comparison tests."""

import pytest

from repro.core.report import (
    energy_comparison,
    energy_comparison_by_name,
    generate_report,
)
from repro.workloads.minife import MiniFE


class TestEnergyComparison:
    def test_table_structure(self, runner):
        table = energy_comparison(MiniFE.from_matrix_gb(3.6), runner=runner)
        text = table.render()
        assert "EDP" in text
        assert "HBM" in text

    def test_infeasible_rows_dashed(self, runner):
        table = energy_comparison(MiniFE.from_matrix_gb(28.8), runner=runner)
        hbm_row = next(
            line for line in table.render().splitlines() if "HBM" in line
        )
        assert "-" in hbm_row

    def test_by_name(self, runner):
        table = energy_comparison_by_name("gups", 4.0, runner=runner)
        assert "GUPS" in table.render()

    def test_by_name_unknown(self):
        with pytest.raises(KeyError):
            energy_comparison_by_name("hpl", 4.0)


class TestStudyReport:
    def test_contains_every_exhibit(self, runner):
        report = generate_report(runner)
        text = report.render()
        for exhibit_id in (
            "table1", "table2", "fig1", "fig2", "fig3", "fig4a", "fig4b",
            "fig4c", "fig4d", "fig4e", "fig5", "fig6a", "fig6b", "fig6c",
            "fig6d",
        ):
            assert f"{exhibit_id}:" in text

    def test_section_count(self, runner):
        # The paper's 15 exhibits plus the cross-machine zoo.
        assert len(generate_report(runner).sections) == 16
