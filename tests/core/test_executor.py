"""SweepExecutor tests: cache keys, memoization, strategies, stats."""

import json

import pytest

from repro.core.configs import ConfigName, make_config
from repro.core.executor import (
    ExecutionStrategy,
    RunCache,
    SweepCell,
    SweepExecutor,
    as_executor,
    cache_key,
    executor_from_env,
    ordered_map,
    record_from_json,
    record_to_json,
)
from repro.core.runner import ExperimentRunner
from repro.core.sweep import size_sweep
from repro.machine.presets import knl7210, knl7250
from repro.workloads.stream import StreamBenchmark


def _stream(gb: float) -> StreamBenchmark:
    return StreamBenchmark(size_bytes=int(gb * 1e9))


DRAM = make_config(ConfigName.DRAM)
HBM = make_config(ConfigName.HBM)
CACHE = make_config(ConfigName.CACHE)


class TestCacheKey:
    def test_stable_across_calls(self, machine):
        a = cache_key(machine, _stream(2.0), DRAM, 64)
        b = cache_key(machine, _stream(2.0), DRAM, 64)
        assert a == b

    def test_distinct_across_equal_instances(self, machine):
        assert cache_key(machine, _stream(2.0), DRAM, 64) == cache_key(
            machine, StreamBenchmark(size_bytes=int(2e9)), DRAM, 64
        )

    def test_config_changes_key(self, machine):
        w = _stream(2.0)
        assert cache_key(machine, w, DRAM, 64) != cache_key(machine, w, HBM, 64)

    def test_threads_change_key(self, machine):
        w = _stream(2.0)
        assert cache_key(machine, w, DRAM, 64) != cache_key(machine, w, DRAM, 128)

    def test_params_change_key(self, machine):
        assert cache_key(machine, _stream(2.0), DRAM, 64) != cache_key(
            machine, _stream(2.1), DRAM, 64
        )

    def test_machine_preset_invalidates(self):
        w = _stream(2.0)
        assert cache_key(knl7210(), w, DRAM, 64) != cache_key(knl7250(), w, DRAM, 64)

    def test_ablation_config_params_change_key(self, machine):
        w = _stream(2.0)
        one_way = make_config(ConfigName.CACHE, cache_associativity=1)
        eight_way = make_config(ConfigName.CACHE, cache_associativity=8)
        assert cache_key(machine, w, one_way, 64) != cache_key(
            machine, w, eight_way, 64
        )


class TestRecordSerialization:
    def test_feasible_roundtrip(self, machine):
        record = ExperimentRunner(machine).run(_stream(2.0), HBM, 64)
        assert record_from_json(record_to_json(record)) == record

    def test_infeasible_roundtrip(self, machine):
        record = ExperimentRunner(machine).run(_stream(20.0), HBM, 64)
        assert record.infeasible_reason is not None
        assert record_from_json(record_to_json(record)) == record

    def test_json_encodable(self, machine):
        record = ExperimentRunner(machine).run(_stream(2.0), CACHE, 64)
        text = json.dumps(record_to_json(record))
        assert record_from_json(json.loads(text)) == record


class TestRunCache:
    def test_lru_eviction(self, machine):
        cache = RunCache(max_entries=2)
        runner = ExperimentRunner(machine)
        records = [runner.run(_stream(gb), DRAM, 64) for gb in (1.0, 2.0, 3.0)]
        for i, record in enumerate(records):
            cache.put(f"k{i}", record)
        assert cache.get("k0") is None  # evicted
        assert cache.get("k1") == records[1]
        assert cache.get("k2") == records[2]

    def test_disk_roundtrip(self, machine, tmp_path):
        runner = ExperimentRunner(machine)
        record = runner.run(_stream(2.0), HBM, 64)
        RunCache(cache_dir=tmp_path).put("deadbeef", record)
        fresh = RunCache(cache_dir=tmp_path)
        assert fresh.get("deadbeef") == record
        assert fresh.disk_hits == 1

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        (tmp_path / "bad.json").write_text("{not json")
        assert RunCache(cache_dir=tmp_path).get("bad") is None

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            RunCache(max_entries=0)


class TestSweepExecutor:
    def test_run_matches_plain_runner(self, machine):
        plain = ExperimentRunner(machine).run(_stream(2.0), ConfigName.HBM, 64)
        cached = SweepExecutor(ExperimentRunner(machine)).run(
            _stream(2.0), ConfigName.HBM, 64
        )
        assert plain == cached

    def test_batch_dedupe_counts_hits(self, machine):
        executor = SweepExecutor(ExperimentRunner(machine))
        cell = SweepCell(_stream(2.0), DRAM, 64)
        records = executor.run_cells([cell, cell, cell])
        assert records[0] == records[1] == records[2]
        stats = executor.stats()
        assert stats.misses == 1 and stats.hits == 2 and stats.executed == 1

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            SweepExecutor(jobs=0)

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError):
            SweepExecutor(strategy="gpu")

    def test_strategy_defaults(self):
        assert SweepExecutor().strategy is ExecutionStrategy.SERIAL
        assert SweepExecutor(jobs=4).strategy is ExecutionStrategy.THREADS

    def test_as_executor_passthrough(self, machine):
        executor = SweepExecutor(ExperimentRunner(machine))
        assert as_executor(executor) is executor
        wrapped = as_executor(ExperimentRunner(machine))
        assert isinstance(wrapped, SweepExecutor)

    def test_stats_describe(self, machine):
        executor = SweepExecutor(ExperimentRunner(machine))
        executor.run(_stream(2.0), DRAM, 64)
        executor.run(_stream(2.0), DRAM, 64)
        text = executor.stats().describe()
        assert "2 lookups" in text and "50.0%" in text


SWEEP_SIZES = (2.0, 8.0, 20.0)


def _sweep(executor) -> list:
    rs = size_sweep(executor, _stream, SWEEP_SIZES, num_threads=64)
    return [record for _, record in rs.records]


class TestDeterminismUnderParallelism:
    """Same sweep through jobs=1, thread jobs=4 and process jobs=4 must
    yield identical RunRecord sequences and identical cache keys."""

    @pytest.fixture(scope="class")
    def serial_records(self, machine):
        return _sweep(SweepExecutor(ExperimentRunner(machine), jobs=1))

    @pytest.mark.parametrize("strategy", ["threads", "processes"])
    def test_records_identical(self, machine, serial_records, strategy):
        with SweepExecutor(
            ExperimentRunner(machine), jobs=4, strategy=strategy
        ) as executor:
            assert _sweep(executor) == serial_records

    @pytest.mark.parametrize("strategy", ["serial", "threads", "processes"])
    def test_cache_keys_identical(self, machine, strategy):
        executor = SweepExecutor(
            ExperimentRunner(machine), jobs=4, strategy=strategy
        )
        cells = [
            SweepCell(_stream(gb), config, 64)
            for gb in SWEEP_SIZES
            for config in (DRAM, HBM, CACHE)
        ]
        keys = [executor.cache_key(cell) for cell in cells]
        baseline = SweepExecutor(ExperimentRunner(machine))
        assert keys == [baseline.cache_key(cell) for cell in cells]
        executor.close()


class TestCacheHitRate:
    def test_repeated_sweep_hits_above_90_percent(self, machine):
        executor = SweepExecutor(ExperimentRunner(machine))
        _sweep(executor)
        executor.reset_stats()
        repeated = _sweep(executor)
        stats = executor.stats()
        assert stats.hit_rate > 0.9
        assert stats.executed == 0
        assert repeated == _sweep(SweepExecutor(ExperimentRunner(machine)))

    def test_cumulative_hit_rate_grows(self, machine):
        executor = SweepExecutor(ExperimentRunner(machine))
        for _ in range(12):
            _sweep(executor)
        assert executor.stats().hit_rate > 0.9

    def test_disk_cache_survives_restart(self, machine, tmp_path):
        first = SweepExecutor(ExperimentRunner(machine), cache_dir=tmp_path)
        warm = _sweep(first)
        fresh = SweepExecutor(ExperimentRunner(machine), cache_dir=tmp_path)
        assert _sweep(fresh) == warm
        stats = fresh.stats()
        assert stats.executed == 0 and stats.hit_rate == 1.0


class TestStatsConsistencyAcrossStrategies:
    """The documented `ExecutorStats` aggregation contract: counters
    accumulate in the submitting process under *every* strategy, so the
    same batch sequence reports identical stats whether cells ran
    serially, on a thread pool or across a process pool — `--jobs N`
    hit rates are directly comparable."""

    def _run_batches(self, machine, strategy):
        with SweepExecutor(
            ExperimentRunner(machine), jobs=4, strategy=strategy
        ) as executor:
            _sweep(executor)
            _sweep(executor)  # second pass: all memory-cache hits
            stats = executor.stats()
        return stats

    @pytest.fixture(scope="class")
    def serial_stats(self, machine):
        return self._run_batches(machine, "serial")

    @pytest.mark.parametrize("strategy", ["threads", "processes"])
    def test_identical_to_serial(self, machine, serial_stats, strategy):
        stats = self._run_batches(machine, strategy)
        assert (
            stats.hits,
            stats.misses,
            stats.disk_hits,
            stats.executed,
        ) == (
            serial_stats.hits,
            serial_stats.misses,
            serial_stats.disk_hits,
            serial_stats.executed,
        )
        assert stats.hit_rate == serial_stats.hit_rate

    def test_counts_are_complete(self, serial_stats):
        # Every lookup is either a hit or a miss; every miss executed.
        assert serial_stats.hits + serial_stats.misses > 0
        assert serial_stats.executed == serial_stats.misses
        assert serial_stats.hit_rate == pytest.approx(
            serial_stats.hits / (serial_stats.hits + serial_stats.misses)
        )


class TestExecutorFromEnv:
    def test_no_env_returns_runner(self, machine):
        runner = ExperimentRunner(machine)
        assert executor_from_env(runner, env={}) is runner

    def test_jobs_env_wraps(self, machine):
        wrapped = executor_from_env(
            ExperimentRunner(machine), env={"REPRO_JOBS": "3"}
        )
        assert isinstance(wrapped, SweepExecutor)
        assert wrapped.jobs == 3
        assert wrapped.strategy is ExecutionStrategy.THREADS

    def test_strategy_env(self, machine):
        wrapped = executor_from_env(
            ExperimentRunner(machine),
            env={"REPRO_JOBS": "2", "REPRO_EXECUTOR": "processes"},
        )
        assert wrapped.strategy is ExecutionStrategy.PROCESSES
        wrapped.close()

    def test_cache_dir_env(self, machine, tmp_path):
        wrapped = executor_from_env(
            ExperimentRunner(machine), env={"REPRO_CACHE_DIR": str(tmp_path)}
        )
        assert isinstance(wrapped, SweepExecutor)
        assert wrapped.cache.cache_dir == tmp_path


class TestOrderedMap:
    def test_preserves_order(self):
        items = list(range(20))
        assert ordered_map(lambda x: x * x, items, jobs=4) == [
            x * x for x in items
        ]

    def test_serial_path(self):
        assert ordered_map(str, [1, 2], jobs=1) == ["1", "2"]

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            ordered_map(str, [1], jobs=0)


class TestSensitivityParallel:
    def test_jobs_do_not_change_results(self, machine):
        from repro.core.sensitivity import (
            SensitivityAnalysis,
            default_perturbations,
            paper_conclusions,
        )

        analysis = SensitivityAnalysis(machine)
        perturbations = default_perturbations()[:3]
        conclusions = paper_conclusions()[:2]
        serial = analysis.run(perturbations, conclusions, jobs=1)
        threaded = analysis.run(perturbations, conclusions, jobs=3)
        assert serial == threaded
