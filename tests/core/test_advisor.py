"""Placement advisor tests — the Section-VI recommendations must come out."""

import pytest

from repro.core.advisor import PlacementAdvisor
from repro.core.configs import ConfigName
from repro.workloads.graph500 import Graph500
from repro.workloads.gups import GUPS
from repro.workloads.minife import MiniFE
from repro.workloads.stream import StreamBenchmark
from repro.workloads.xsbench import XSBench


@pytest.fixture(scope="module")
def advisor(runner):
    return PlacementAdvisor(runner)


class TestRecommendations:
    def test_sequential_fitting_gets_hbm(self, advisor):
        rec = advisor.recommend(MiniFE.from_matrix_gb(7.2), 64)
        assert rec.best is ConfigName.HBM
        assert rec.expected_improvement_vs_dram > 2.5
        assert any(g.rule_id == "seq-fits-hbm" for g in rec.guidelines)

    def test_sequential_comparable_gets_cache(self, advisor):
        rec = advisor.recommend(
            StreamBenchmark(size_bytes=int(18e9)), 64
        )
        assert rec.best is ConfigName.CACHE

    def test_sequential_oversized_gets_dram(self, advisor):
        rec = advisor.recommend(StreamBenchmark(size_bytes=int(32e9)), 64)
        assert rec.best is ConfigName.DRAM

    def test_random_single_thread_gets_dram(self, advisor):
        rec = advisor.recommend(GUPS.from_table_gb(8.0), 64)
        assert rec.best is ConfigName.DRAM
        assert any(g.rule_id == "rand-single-thread" for g in rec.guidelines)

    def test_xsbench_flips_to_hbm_with_hyperthreads(self, advisor):
        """Fig. 6d: at 256 threads HBM becomes the best option."""
        at64 = advisor.recommend(XSBench.from_problem_gb(11.3), 64)
        at256 = advisor.recommend(XSBench.from_problem_gb(11.3), 256)
        assert at64.best is ConfigName.DRAM
        assert at256.best is ConfigName.HBM

    def test_graph500_stays_dram(self, advisor):
        """Graph500 'might not be able to completely hide the memory
        latency, hence DRAM still gives the best performance'."""
        rec = advisor.recommend(Graph500.from_graph_gb(8.8), 128)
        assert rec.best is ConfigName.DRAM

    def test_oversized_returns_feasible_best(self, advisor):
        rec = advisor.recommend(Graph500.from_graph_gb(35.0), 64)
        hbm_record = next(
            r for r in rec.records if r.config is ConfigName.HBM
        )
        assert not hbm_record.feasible
        assert rec.best in (ConfigName.DRAM, ConfigName.CACHE)

    def test_describe_lists_everything(self, advisor):
        rec = advisor.recommend(MiniFE.from_matrix_gb(3.6), 64)
        text = rec.describe()
        assert "MiniFE" in text
        assert "guideline" in text
        assert "DRAM" in text and "HBM" in text
