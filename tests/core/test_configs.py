"""Configuration tests."""

import pytest

from repro.core.configs import ConfigName, make_config, standard_configs
from repro.memory.modes import MemoryMode


class TestStandardConfigs:
    def test_trio_order(self):
        names = [c.name for c in standard_configs()]
        assert names == [ConfigName.DRAM, ConfigName.HBM, ConfigName.CACHE]

    def test_dram_is_flat_membind0(self):
        c = make_config(ConfigName.DRAM)
        assert c.mcdram.mode is MemoryMode.FLAT
        assert c.numactl == "--membind=0"

    def test_hbm_is_flat_membind1(self):
        c = make_config(ConfigName.HBM)
        assert c.mcdram.mode is MemoryMode.FLAT
        assert c.numactl == "--membind=1"

    def test_cache_is_cache_membind0(self):
        """The paper binds node 0 in cache mode 'for consistency'."""
        c = make_config(ConfigName.CACHE)
        assert c.mcdram.mode is MemoryMode.CACHE
        assert c.numactl == "--membind=0"

    def test_labels_match_figures(self):
        assert make_config(ConfigName.CACHE).label == "Cache Mode"


class TestExtraConfigs:
    def test_hybrid(self):
        c = make_config(ConfigName.HYBRID, hybrid_cache_fraction=0.25)
        assert c.mcdram.mode is MemoryMode.HYBRID
        assert c.mcdram.cache_fraction == 0.25

    def test_interleave(self):
        c = make_config(ConfigName.INTERLEAVE)
        assert c.numactl == "--interleave=0,1"

    def test_associativity_knob(self):
        c = make_config(ConfigName.CACHE, cache_associativity=8)
        assert c.mcdram.cache_associativity == 8

    def test_describe(self):
        assert "membind" in make_config(ConfigName.HBM).describe()
