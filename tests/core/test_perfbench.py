"""BENCH trajectory files: history accumulation and recalibration notes.

``make bench`` / ``make bench-serve`` regenerate their BENCH_*.json
files; since this PR they no longer *overwrite* the trajectory — every
regeneration appends one compact timestamped row to a ``history`` list
carried over from the existing file, and the engine file preserves the
``recalibration`` note explaining the 2026-08 scalar-baseline break.
"""

from __future__ import annotations

import json

from repro.core.perfbench import (
    RECALIBRATION_NOTE,
    EngineBenchResult,
    write_bench_json,
)
from repro.serve.loadgen import write_bench_json as write_serve_bench_json


def fake_result(scalar_seconds: float = 0.05) -> EngineBenchResult:
    return EngineBenchResult(
        grid_points=1000,
        scalar_sample_points=100,
        scalar_seconds=scalar_seconds,
        batch_cold_seconds=0.02,
        batch_warm_seconds=0.01,
        batch_hot_seconds=0.005,
        identity_checked_points=100,
        eventsim_requests=12800,
        eventsim_reference_seconds=0.04,
        eventsim_optimized_seconds=0.008,
        eventsim_vector_requests=25600,
        eventsim_vector_reference_seconds=0.08,
        eventsim_vector_optimized_seconds=0.007,
    )


class TestEngineBenchHistory:
    def test_first_write_creates_history_and_recalibration(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        write_bench_json(fake_result(), path)
        document = json.loads(path.read_text())
        assert document["recalibration"] == RECALIBRATION_NOTE
        assert len(document["history"]) == 1
        entry = document["history"][0]
        assert entry["scalar_us_per_point"] == 500.0
        assert entry["eventsim_speedup"] == 5.0
        assert "at" in entry

    def test_regeneration_appends_not_overwrites(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        write_bench_json(fake_result(0.05), path)
        write_bench_json(fake_result(0.02), path)
        document = json.loads(path.read_text())
        assert [h["scalar_us_per_point"] for h in document["history"]] == [
            500.0,
            200.0,
        ]
        # The headline block always reflects the latest measurement.
        assert document["scalar"]["us_per_point"] == 200.0

    def test_existing_recalibration_note_is_preserved(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        custom = {"date": "2031-01-01", "reason": "future break"}
        path.write_text(json.dumps({"recalibration": custom}))
        write_bench_json(fake_result(), path)
        document = json.loads(path.read_text())
        assert document["recalibration"] == custom

    def test_corrupt_existing_file_starts_history_fresh(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        path.write_text("{not json")
        write_bench_json(fake_result(), path)
        document = json.loads(path.read_text())
        assert len(document["history"]) == 1

    def test_vector_point_recorded_alongside_legacy_point(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        write_bench_json(fake_result(), path)
        document = json.loads(path.read_text())
        assert document["eventsim"]["speedup"] == 5.0
        assert document["eventsim_vector"]["speedup"] == 80.0 / 7.0
        assert document["eventsim_vector"]["requests"] == 25600


class TestServeBenchHistory:
    DOCUMENT = {
        "speedup_coalesced_vs_naive": 3.1,
        "speedup_hot_vs_naive": 4.0,
        "coalesced": {"throughput_rps": 900.0},
    }

    def test_history_accumulates_across_writes(self, tmp_path):
        path = str(tmp_path / "BENCH_serve.json")
        write_serve_bench_json(dict(self.DOCUMENT), path)
        write_serve_bench_json(dict(self.DOCUMENT), path)
        document = json.loads(open(path).read())
        assert len(document["history"]) == 2
        assert all(
            h["speedup_coalesced_vs_naive"] == 3.1 for h in document["history"]
        )

    def test_sharded_scaling_summary_lands_in_history(self, tmp_path):
        path = str(tmp_path / "BENCH_serve.json")
        sharded = {
            "scaling": {
                "goodput_rps": {"1": 100.0, "4": 380.0},
                "speedup_vs_min": {"1": 1.0, "4": 3.8},
                "parallel_efficiency": {"1": 1.0, "4": 0.95},
            }
        }
        write_serve_bench_json(sharded, path)
        entry = json.loads(open(path).read())["history"][0]
        assert entry["speedup_vs_min"] == {"1": 1.0, "4": 3.8}
        assert entry["parallel_efficiency"] == {"1": 1.0, "4": 0.95}

    def test_input_document_is_not_mutated(self, tmp_path):
        document = dict(self.DOCUMENT)
        write_serve_bench_json(document, str(tmp_path / "b.json"))
        assert "history" not in document
