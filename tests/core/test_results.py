"""ResultSet / Series tests."""

import pytest

from repro.core.configs import ConfigName
from repro.core.results import ResultSet, Series
from repro.core.runner import RunRecord


def record(config, metric, threads=64):
    return RunRecord(
        workload="w",
        workload_params={},
        config=config,
        num_threads=threads,
        metric=metric,
        metric_name="m",
        metric_unit="u",
        infeasible_reason=None if metric is not None else "too big",
    )


@pytest.fixture()
def results():
    recs = []
    for x, (d, h, c) in [
        (1.0, (10.0, 30.0, 25.0)),
        (2.0, (10.0, 30.0, 20.0)),
        (4.0, (10.0, None, 12.0)),
    ]:
        recs.append((x, record(ConfigName.DRAM, d)))
        recs.append((x, record(ConfigName.HBM, h)))
        recs.append((x, record(ConfigName.CACHE, c)))
    return ResultSet(recs, x_label="Size (GB)", title="t")


class TestSeries:
    def test_defined_filters_missing(self):
        s = Series("s", (1.0, 2.0, 3.0), (1.0, None, 3.0))
        xs, ys = s.defined()
        assert xs == (1.0, 3.0)
        assert ys == (1.0, 3.0)

    def test_max_y(self):
        assert Series("s", (1.0,), (None,)).max_y is None
        assert Series("s", (1.0, 2.0), (5.0, 7.0)).max_y == 7.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            Series("s", (1.0,), (1.0, 2.0))


class TestResultSet:
    def test_xs_and_configs(self, results):
        assert results.xs == [1.0, 2.0, 4.0]
        assert results.configs == [
            ConfigName.DRAM, ConfigName.HBM, ConfigName.CACHE
        ]

    def test_value_lookup(self, results):
        assert results.value(2.0, ConfigName.CACHE) == 20.0
        assert results.value(4.0, ConfigName.HBM) is None
        assert results.value(9.0, ConfigName.DRAM) is None

    def test_series(self, results):
        s = results.series(ConfigName.HBM)
        assert s.ys == (30.0, 30.0, None)

    def test_improvement_series(self, results):
        imp = results.improvement_series(ConfigName.HBM, ConfigName.DRAM)
        assert imp.ys == (3.0, 3.0, None)

    def test_table_renders_missing_as_dash(self, results):
        text = results.to_table().render()
        assert "-" in text.splitlines()[-1]

    def test_chart_renders(self, results):
        assert "DRAM" in results.to_chart().render()

    def test_render_combines(self, results):
        text = results.render()
        assert "Size (GB)" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ResultSet([], x_label="x", title="t")


class TestExport:
    def test_csv_round_trip(self, results):
        import csv
        import io

        rows = list(csv.reader(io.StringIO(results.to_csv())))
        assert rows[0] == ["Size (GB)", "DRAM", "HBM", "Cache Mode"]
        assert len(rows) == 4
        # Missing HBM value at x=4 is an empty cell.
        assert rows[3][2] == ""
        assert float(rows[1][1]) == 10.0

    def test_records_json_ready(self, results):
        import json

        records = results.to_records()
        assert len(records) == 9
        text = json.dumps(records)  # must serialize
        assert "infeasible_reason" in text
        missing = [r for r in records if r["metric"] is None]
        assert all(r["infeasible_reason"] for r in missing)
