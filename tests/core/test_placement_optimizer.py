"""Placement optimizer tests."""

import pytest

from repro.core.configs import ConfigName
from repro.core.placement_optimizer import (
    PlacementOptimizer,
    Structure,
    structures_for,
)
from repro.engine.placement import Location
from repro.workloads.graph500 import Graph500
from repro.workloads.gups import GUPS
from repro.workloads.minife import MiniFE


@pytest.fixture(scope="module")
def optimizer():
    return PlacementOptimizer()


class TestStructures:
    def test_minife_decomposition_covers_profile(self):
        w = MiniFE.from_matrix_gb(3.6)
        phases = {s.phase for s in structures_for(w)}
        assert phases == {p.name for p in w.profile().phases}

    def test_graph500_decomposition(self):
        w = Graph500(scale=22)
        names = {s.name for s in structures_for(w)}
        assert names == {"csr-adjacency", "vertex-arrays"}

    def test_unknown_workload(self):
        with pytest.raises(ValueError, match="no built-in"):
            structures_for(GUPS(log2_entries=20))

    def test_structure_validation(self):
        with pytest.raises(ValueError):
            Structure("", 10, "p")
        with pytest.raises(ValueError):
            Structure("s", 0, "p")


class TestOptimization:
    def test_minife_keeps_gather_in_dram(self, optimizer):
        """The optimizer applies the paper's conclusions per structure:
        the streamed matrix goes to HBM, the latency-bound x-vector
        gather stays in DRAM — beating even the pure-HBM binding."""
        w = MiniFE.from_matrix_gb(7.2)
        best = optimizer.optimize(w)
        assert best.assignments["stiffness-matrix"] is Location.HBM
        assert best.assignments["x-vector"] is Location.DRAM

    def test_beats_every_coarse_configuration(self, optimizer, runner):
        w = MiniFE.from_matrix_gb(7.2)
        best = optimizer.optimize(w)
        for config in ConfigName.paper_trio():
            record = runner.run(w, config, 64)
            if record.metric is not None:
                assert best.metric >= record.metric * 0.999

    def test_respects_hbm_capacity(self, optimizer):
        w = MiniFE.from_matrix_gb(15.5)  # total exceeds 16 GiB
        best = optimizer.optimize(w)
        assert best.hbm_bytes <= 16 * 2**30
        assert best.assignments["stiffness-matrix"] is Location.HBM

    def test_infeasible_assignments_skipped(self, optimizer):
        w = MiniFE.from_matrix_gb(15.5)
        best = optimizer.optimize(w)
        # 3 structures -> 8 assignments; those overflowing HBM are skipped.
        assert best.evaluated < 8

    def test_graph500_splits_structures(self, optimizer, runner):
        """CSR streams (HBM), vertex arrays are random (DRAM) — the split
        beats all three coarse configurations."""
        w = Graph500.from_graph_gb(8.8)
        best = optimizer.optimize(w)
        assert best.assignments["csr-adjacency"] is Location.HBM
        assert best.assignments["vertex-arrays"] is Location.DRAM
        dram = runner.run(w, ConfigName.DRAM, 64).metric
        assert best.metric > dram

    def test_phase_coverage_checked(self, optimizer):
        w = MiniFE.from_matrix_gb(3.6)
        with pytest.raises(ValueError, match="cover"):
            optimizer.optimize(
                w, [Structure("matrix", w.matrix_bytes, "spmv-stream")]
            )

    def test_custom_threads(self, optimizer):
        w = MiniFE.from_matrix_gb(3.6)
        at64 = optimizer.optimize(w, num_threads=64)
        at128 = optimizer.optimize(w, num_threads=128)
        assert at128.metric > at64.metric
