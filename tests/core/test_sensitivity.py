"""Sensitivity analysis tests."""

import pytest

from repro.core.sensitivity import (
    ConclusionCheck,
    PerturbedDevices,
    SensitivityAnalysis,
    default_perturbations,
    paper_conclusions,
    scale_device,
)
from repro.memory.dram import ddr4_archer
from repro.memory.mcdram import mcdram_archer


class TestScaleDevice:
    def test_latency_scaled(self):
        scaled = scale_device(mcdram_archer(), latency=1.2)
        assert scaled.idle_latency_ns == pytest.approx(154.0 * 1.2)
        assert scaled.peak_bandwidth == mcdram_archer().peak_bandwidth

    def test_validation(self):
        with pytest.raises(ValueError):
            scale_device(ddr4_archer(), bandwidth=0.0)


class TestPerturbations:
    def test_baseline_first(self):
        perturbations = default_perturbations()
        assert perturbations[0].label == "baseline"
        assert len(perturbations) == 9

    def test_spread_validation(self):
        with pytest.raises(ValueError):
            default_perturbations(spread=1.5)


class TestAnalysis:
    @pytest.fixture(scope="class")
    def results(self):
        return SensitivityAnalysis().run()

    def test_baseline_conclusions_all_hold(self, results):
        baseline = [r for r in results if r.perturbation == "baseline"]
        assert baseline and all(r.holds for r in baseline)

    def test_conclusions_robust_to_20_percent(self, results):
        """At most one cell flips under +-20% perturbations, and only the
        physically *expected* one (see below)."""
        flipped = SensitivityAnalysis.flipped(results)
        assert len(flipped) <= 1
        for r in flipped:
            assert r.conclusion == "dram-best-for-xsbench-at-1tpc"
            assert r.perturbation == "hbm-latency -20%"

    def test_the_flip_is_the_papers_causal_claim(self):
        """Section VI attributes random-access DRAM preference to HBM's
        *higher latency*.  Making HBM latency lower than DRAM's must
        invert that preference — the model encodes the causal mechanism,
        not just the observed ordering."""
        low_latency_hbm = PerturbedDevices(
            "hbm-latency-below-dram",
            ddr4_archer(),
            scale_device(mcdram_archer(), latency=0.8),  # 123 ns < 130.4 ns
        )
        results = SensitivityAnalysis().run(
            perturbations=[low_latency_hbm],
            conclusions=[
                c
                for c in paper_conclusions()
                if c.name == "dram-best-for-xsbench-at-1tpc"
            ],
        )
        assert len(results) == 1
        assert not results[0].holds

    def test_custom_conclusion(self):
        always = ConclusionCheck("trivially-true", lambda m: True)
        results = SensitivityAnalysis().run(conclusions=[always])
        assert all(r.holds for r in results)
