"""End-to-end wire protocol: ServerThread + ServeClient over real TCP.

One server boots per module (model evaluation dominates startup); the
tests cover the typed round trip, error-envelope rehydration, schema
negotiation, the introspection endpoints and graceful shutdown.
"""

from __future__ import annotations

import json

import pytest

from repro.api import (
    DeadlineExceededError,
    Predictor,
    Query,
    QueryGrid,
    SchemaVersionError,
    ValidationError,
)
from repro.api.types import SCHEMA_VERSION, SUPPORTED_SCHEMA_VERSIONS
from repro.serve.client import ServeClient
from repro.serve.service import ServiceConfig
from repro.serve.threadserver import ServerThread


@pytest.fixture(scope="module")
def server():
    with ServerThread(ServiceConfig(batch_window_s=0.001)) as thread:
        yield thread


@pytest.fixture()
def client(server):
    with ServeClient(server.host, server.port) as c:
        yield c


@pytest.fixture(scope="module")
def oracle():
    predictor = Predictor()
    yield predictor
    predictor.close()


class TestPredict:
    def test_single_query_round_trip_is_bit_identical(self, client, oracle):
        query = Query(
            workload="minife", size_gb=7.2, config="Cache Mode", num_threads=64
        )
        assert client.predict(query) == oracle.predict(query)

    def test_predict_many_preserves_order(self, client, oracle):
        queries = [
            Query(workload="dgemm", size_gb=4.0, config=c, num_threads=t)
            for c in ("DRAM", "HBM")
            for t in (32, 64)
        ]
        results = client.predict_many(queries)
        assert results == [oracle.predict(q) for q in queries]

    def test_predict_grid_expands_workload_major(self, client, oracle):
        grid = QueryGrid(
            workloads=("xsbench",),
            sizes_gb=(2.5,),
            configs=("DRAM", "HBM", "Cache Mode"),
        )
        assert client.predict_grid(grid) == [
            oracle.predict(q) for q in grid.expand()
        ]

    def test_infeasible_cell_arrives_as_data(self, client):
        result = client.predict(
            Query(workload="gups", size_gb=32.0, config="HBM")
        )
        assert result.metric is None
        assert result.error is not None
        assert result.error.code == "infeasible_config"


class TestErrorEnvelopes:
    def test_validation_error_rehydrates(self, client):
        status, body = client.request(
            "POST", "/v1/predict", {"query": {"workload": "dgemm"}}
        )
        assert status == 400
        assert body["error"]["code"] == "validation"
        with pytest.raises(ValidationError):
            client._call("POST", "/v1/predict", {"query": {"workload": "x"}})

    def test_unsupported_schema_version(self, client):
        status, body = client.request(
            "POST",
            "/v1/predict",
            {
                "schema_version": SCHEMA_VERSION + 1,
                "query": {
                    "workload": "dgemm",
                    "size_gb": 4.0,
                    "config": "DRAM",
                },
            },
        )
        assert status == 400
        assert body["error"]["code"] == "unsupported_schema"
        assert body["error"]["details"]["supported"] == list(
            SUPPORTED_SCHEMA_VERSIONS
        )

    def test_unknown_workload_is_404(self, client):
        status, body = client.request(
            "POST",
            "/v1/predict",
            {
                "query": {
                    "workload": "linpack",
                    "size_gb": 4.0,
                    "config": "DRAM",
                }
            },
        )
        assert status == 404
        assert body["error"]["code"] == "unknown_workload"

    def test_deadline_exceeded_is_504(self, server):
        # A fresh client so the keyed query is not already cached: the
        # 1 µs deadline must fire before the 1 ms batch window.
        with ServeClient(server.host, server.port) as client:
            with pytest.raises(DeadlineExceededError):
                client.predict(
                    Query(
                        workload="graph500", size_gb=8.0, config="Interleave"
                    ),
                    deadline_s=1e-6,
                )

    def test_unknown_route_is_404(self, client):
        status, body = client.request("GET", "/v2/predict")
        assert status == 404
        assert body["error"]["code"] == "not_found"

    def test_wrong_method_is_405(self, client):
        status, body = client.request("GET", "/v1/predict")
        assert status == 405

    def test_non_json_body_is_400(self, client):
        status, raw = client._round_trip(
            (
                "POST /v1/predict HTTP/1.1\r\n"
                f"Host: {client.host}:{client.port}\r\n"
                "Content-Type: application/json\r\n"
                "Content-Length: 9\r\n"
                "Connection: keep-alive\r\n"
                "\r\n"
                "not-json!"
            ).encode("latin-1")
        )
        assert status == 400
        assert json.loads(raw)["error"]["code"] == "validation"


class TestIntrospection:
    def test_healthz_reports_running(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["uptime_s"] > 0

    def test_version_carries_schema_and_machine(self, client):
        version = client.version()
        assert version["schema_version"] == SCHEMA_VERSION
        assert version["machine"] == "knl7210"
        assert version["coalesce"] is True

    def test_metrics_document_shape(self, client, oracle):
        query = Query(workload="dgemm", size_gb=4.0, config="DRAM")
        client.predict(query)
        client.predict(query)  # guaranteed cache hit
        snapshot = client.metrics()
        assert snapshot["cache"]["hits"] >= 1
        assert snapshot["coalescer"]["enabled"]
        assert snapshot["executor"]["batched_cells"] >= 0
        histograms = snapshot["service"]["histograms"]
        assert any(
            key.startswith("serve.request_ms") for key in histograms
        )


class TestShutdown:
    def test_graceful_stop_then_connection_refused(self):
        with ServerThread(ServiceConfig()) as thread:
            client = ServeClient(thread.host, thread.port)
            assert client.healthz()["status"] == "ok"
            client.close()
        with pytest.raises(OSError):
            ServeClient(thread.host, thread.port).healthz()
