"""The coalescer: batching, backpressure, cancellation, shutdown.

These tests drive the coalescer directly on a private event loop with a
stub evaluator, so batching behaviour is observable without a model in
the loop.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api.errors import CapacityError
from repro.api.types import PredictionResult, Query
from repro.serve.coalescer import Coalescer


def _query(i: int) -> Query:
    return Query(
        workload="dgemm", size_gb=1.0 + i, config="DRAM", num_threads=64
    )


def _result(query: Query) -> PredictionResult:
    return PredictionResult(
        query=query, metric=query.size_gb, metric_name="x", metric_unit="y"
    )


class RecordingEvaluator:
    """Stub evaluate() that records the batches it was handed."""

    def __init__(self) -> None:
        self.batches: list[list[Query]] = []

    def __call__(self, queries: list[Query]) -> list[PredictionResult]:
        self.batches.append(list(queries))
        return [_result(q) for q in queries]


def run(coro):
    return asyncio.run(coro)


def test_concurrent_submissions_coalesce_into_one_batch():
    evaluator = RecordingEvaluator()

    async def scenario():
        with ThreadPoolExecutor(1) as pool:
            coalescer = Coalescer(
                evaluator, pool=pool, max_batch=64, batch_window_s=0.01
            )
            coalescer.start()
            futures = [coalescer.submit(_query(i), f"k{i}") for i in range(8)]
            results = await asyncio.gather(*futures)
            await coalescer.stop()
            return results

    results = run(scenario())
    assert len(evaluator.batches) == 1
    assert len(evaluator.batches[0]) == 8
    # Queue order is preserved end to end.
    assert [r.metric for r in results] == [1.0 + i for i in range(8)]
    assert [q.size_gb for q in evaluator.batches[0]] == [
        1.0 + i for i in range(8)
    ]


def test_max_batch_splits_the_queue():
    evaluator = RecordingEvaluator()

    async def scenario():
        with ThreadPoolExecutor(1) as pool:
            coalescer = Coalescer(
                evaluator, pool=pool, max_batch=3, batch_window_s=0.0
            )
            coalescer.start()
            futures = [coalescer.submit(_query(i), f"k{i}") for i in range(7)]
            await asyncio.gather(*futures)
            await coalescer.stop()

    run(scenario())
    assert sum(len(b) for b in evaluator.batches) == 7
    assert all(len(b) <= 3 for b in evaluator.batches)


def test_full_queue_rejects_with_capacity_error():
    async def scenario():
        with ThreadPoolExecutor(1) as pool:
            coalescer = Coalescer(
                RecordingEvaluator(), pool=pool, max_queue=2
            )
            coalescer.start()
            # No await between submits: the dispatcher never runs, so the
            # queue genuinely fills.
            first = [coalescer.submit(_query(i), f"k{i}") for i in range(2)]
            with pytest.raises(CapacityError) as excinfo:
                coalescer.submit(_query(2), "k2")
            assert excinfo.value.details["max_queue"] == 2
            assert coalescer.rejected == 1
            await asyncio.gather(*first)
            await coalescer.stop()

    run(scenario())


def test_submit_after_stop_rejects():
    async def scenario():
        with ThreadPoolExecutor(1) as pool:
            coalescer = Coalescer(RecordingEvaluator(), pool=pool)
            coalescer.start()
            await coalescer.stop()
            with pytest.raises(CapacityError):
                coalescer.submit(_query(0), "k0")

    run(scenario())


def test_cancelled_entries_are_never_evaluated():
    evaluator = RecordingEvaluator()

    async def scenario():
        with ThreadPoolExecutor(1) as pool:
            coalescer = Coalescer(
                evaluator, pool=pool, batch_window_s=0.05
            )
            coalescer.start()
            doomed = coalescer.submit(_query(0), "k0")
            kept = coalescer.submit(_query(1), "k1")
            doomed.cancel()  # a request deadline firing while queued
            result = await kept
            await coalescer.stop()
            return result

    result = run(scenario())
    assert result.metric == 2.0
    assert len(evaluator.batches) == 1
    assert [q.size_gb for q in evaluator.batches[0]] == [2.0]


def test_stop_evaluates_queued_work_before_exiting():
    evaluator = RecordingEvaluator()

    async def scenario():
        with ThreadPoolExecutor(1) as pool:
            coalescer = Coalescer(evaluator, pool=pool)
            coalescer.start()
            # Submitted but not yet dispatched when stop() begins.
            queued = coalescer.submit(_query(0), "k0")
            await coalescer.stop()
            return queued

    queued = run(scenario())
    assert queued.result().metric == 1.0
    assert len(evaluator.batches) == 1


def test_stop_fails_leftovers_when_dispatchers_are_gone():
    async def scenario():
        with ThreadPoolExecutor(1) as pool:
            coalescer = Coalescer(RecordingEvaluator(), pool=pool)
            coalescer.start()
            for task in coalescer._tasks:  # simulate a crashed loop
                task.cancel()
            leftover = coalescer.submit(_query(0), "k0")
            await coalescer.stop()
            with pytest.raises(CapacityError):
                leftover.result()

    run(scenario())


def test_drain_waits_for_inflight_work():
    async def scenario():
        with ThreadPoolExecutor(1) as pool:
            coalescer = Coalescer(RecordingEvaluator(), pool=pool)
            coalescer.start()
            futures = [coalescer.submit(_query(i), f"k{i}") for i in range(4)]
            assert await coalescer.drain(timeout=5.0)
            assert all(f.done() for f in futures)
            await coalescer.stop()

    run(scenario())


def test_counters_track_submissions_and_batches():
    evaluator = RecordingEvaluator()

    async def scenario():
        with ThreadPoolExecutor(1) as pool:
            coalescer = Coalescer(evaluator, pool=pool, batch_window_s=0.01)
            coalescer.start()
            await asyncio.gather(
                *[coalescer.submit(_query(i), f"k{i}") for i in range(5)]
            )
            await coalescer.stop()
            return coalescer

    coalescer = run(scenario())
    assert coalescer.submitted == 5
    assert coalescer.dispatched_queries == 5
    assert coalescer.dispatched_batches == len(evaluator.batches)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_batch": 0},
        {"max_queue": 0},
        {"dispatchers": 0},
        {"batch_window_s": -0.1},
    ],
)
def test_invalid_parameters_raise(kwargs):
    with ThreadPoolExecutor(1) as pool:
        with pytest.raises(ValueError):
            Coalescer(RecordingEvaluator(), pool=pool, **kwargs)
