"""Fault-injection harness: the sharded deployment under misbehaviour.

The [test]-archetype contract of the sharding work: every scenario a
replica can inflict — crash-stop, stall, slowdown, poisoned answers,
administrative drain — ends in one of exactly two outcomes for a
caller: a **bit-identical** answer (vs direct scalar evaluation) via
failover, or a **typed** :class:`~repro.api.errors.ApiError` envelope.
Never a hang, never a malformed body, never a wrong number.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import Predictor
from repro.api.errors import (
    ApiError,
    CapacityError,
    DeadlineExceededError,
)
from repro.api.types import Query
from repro.serve.client import ServeClient
from repro.serve.faults import FaultInjector
from repro.serve.service import ServiceConfig
from repro.serve.shard import ShardConfig, ShardDeployment


def _queries() -> list[Query]:
    return [
        Query(workload=w, size_gb=g, config=c, num_threads=64)
        for w, g in (("gups", 16.0), ("xsbench", 32.0), ("minife", 24.0))
        for c in ("DRAM", "HBM", "Cache Mode")
    ]


@pytest.fixture(scope="module")
def oracle():
    predictor = Predictor()
    yield predictor
    predictor.close()


def _deployment(
    faults: FaultInjector, **overrides: object
) -> ShardDeployment:
    settings: dict = dict(
        replicas=3,
        backend="thread",
        service=ServiceConfig(workers=1, cache_ttl_s=None),
        probe_interval_s=0.0,  # passive detection only: deterministic
        fail_after=1,
        router_cache_entries=0,  # every request must touch a replica
        attempt_timeout_s=2.0,
    )
    settings.update(overrides)
    return ShardDeployment(ShardConfig(**settings), faults=faults)


def _owner_of(deployment: ShardDeployment, oracle: Predictor, query: Query) -> str:
    return deployment.replicas.ring().assign(oracle.cache_key(query))


def test_fault_injection_requires_thread_backend():
    from repro.api.errors import ValidationError

    with pytest.raises(ValidationError):
        ShardDeployment(
            ShardConfig(backend="process"), faults=FaultInjector()
        )


def test_stalled_replica_fails_over_within_attempt_budget(oracle):
    """A stall is the nastiest fault: the replica accepts the request
    and never answers.  The per-attempt budget bounds the wait, the
    ring successor answers bit-identically, and the caller never sees
    the stall at all."""
    faults = FaultInjector()
    deployment = _deployment(faults)
    try:
        host, port = deployment.start()
        query = _queries()[0]
        victim = _owner_of(deployment, oracle, query)
        faults.stall(victim)
        with ServeClient(host, port, timeout=30.0) as client:
            started = time.monotonic()
            result = client.predict(query, deadline_s=20.0)
            elapsed = time.monotonic() - started
        assert result == oracle.predict(query)
        assert elapsed < 10.0, f"failover took {elapsed:.1f}s"
        assert faults.triggered(victim) >= 1
    finally:
        deployment.stop()
    assert faults.active() == {}  # stop() released every fault


def test_stalled_replica_honors_the_request_deadline(oracle):
    """With no per-attempt budget the stall consumes the whole request
    deadline — which must then surface as a typed 504, on time."""
    faults = FaultInjector()
    deployment = _deployment(faults, attempt_timeout_s=None)
    try:
        host, port = deployment.start()
        query = _queries()[0]
        faults.stall(_owner_of(deployment, oracle, query))
        with ServeClient(host, port, timeout=30.0) as client:
            started = time.monotonic()
            with pytest.raises(DeadlineExceededError):
                client.predict(query, deadline_s=1.5)
            elapsed = time.monotonic() - started
        assert elapsed < 8.0, f"deadline overshot: {elapsed:.1f}s"
    finally:
        deployment.stop()


def test_poisoned_replica_fails_over_and_is_quarantined(oracle):
    """A replica whose evaluations raise serves internal-error envelopes
    with live connections: callers must still get the right answer from
    the successor, and the poisoned replica must leave the ring."""
    faults = FaultInjector()
    deployment = _deployment(faults)
    try:
        host, port = deployment.start()
        query = _queries()[1]
        victim = _owner_of(deployment, oracle, query)
        faults.fail(victim)
        with ServeClient(host, port, timeout=30.0) as client:
            assert client.predict(query) == oracle.predict(query)
        assert faults.triggered(victim) >= 1
        assert deployment.replicas.info(victim).state == "down"
        assert victim not in deployment.replicas.routable_ids()
        # With the victim out of the ring, traffic flows normally.
        with ServeClient(host, port, timeout=30.0) as client:
            for q in _queries()[:4]:
                assert client.predict(q) == oracle.predict(q)
    finally:
        deployment.stop()


def test_slow_replica_stays_up_and_correct(oracle):
    faults = FaultInjector()
    deployment = _deployment(faults)
    try:
        host, port = deployment.start()
        query = _queries()[2]
        victim = _owner_of(deployment, oracle, query)
        faults.slow(victim, 0.3)
        with ServeClient(host, port, timeout=30.0) as client:
            result = client.predict(query, deadline_s=20.0)
        assert result == oracle.predict(query)
        assert deployment.replicas.info(victim).state == "up"
    finally:
        deployment.stop()


def test_drain_is_graceful_and_leaves_the_ring(oracle):
    """Draining takes the replica out of the ring immediately while its
    in-flight work completes — no caller sees an error."""
    faults = FaultInjector()
    deployment = _deployment(faults)
    try:
        host, port = deployment.start()
        queries = _queries()
        victim = _owner_of(deployment, oracle, queries[0])
        owned = [
            q for q in queries
            if _owner_of(deployment, oracle, q) == victim
        ]
        faults.slow(victim, 0.4)  # keep one request in flight mid-drain
        outcome: list[object] = []

        def in_flight() -> None:
            with ServeClient(host, port, timeout=30.0) as client:
                outcome.append(client.predict(owned[0], deadline_s=20.0))

        worker = threading.Thread(target=in_flight)
        worker.start()
        time.sleep(0.15)  # request is now inside the victim's evaluator
        deployment.drain_replica(victim)
        worker.join(timeout=30)
        assert not worker.is_alive(), "in-flight request hung across drain"
        assert outcome == [oracle.predict(owned[0])]
        assert deployment.replicas.info(victim).state == "draining"
        assert victim not in deployment.replicas.routable_ids()
        # New traffic — including the drained replica's keys — lands on
        # the survivors, still bit-identically.
        faults.clear(victim)
        with ServeClient(host, port, timeout=30.0) as client:
            for q in queries:
                assert client.predict(q) == oracle.predict(q)
    finally:
        deployment.stop()


def test_kill_under_load_never_hangs_or_corrupts(oracle):
    """The headline scenario: a replica is crash-stopped while clients
    are mid-request.  Every request either completes bit-identically
    (failover) or raises a typed ApiError — and every client thread
    terminates."""
    faults = FaultInjector()
    deployment = _deployment(faults)
    try:
        host, port = deployment.start()
        queries = _queries()
        expected = {
            oracle.cache_key(q): oracle.predict(q) for q in queries
        }
        victim = _owner_of(deployment, oracle, queries[0])
        clients = 6
        rounds = 4
        barrier = threading.Barrier(clients + 1)
        outcomes: list[list[object]] = [[] for _ in range(clients)]

        def client_loop(slot: int) -> None:
            with ServeClient(host, port, timeout=30.0) as client:
                barrier.wait()
                for _ in range(rounds):
                    for query in queries:
                        try:
                            outcomes[slot].append(
                                (query, client.predict(query, deadline_s=20.0))
                            )
                        except ApiError as exc:
                            outcomes[slot].append((query, exc))

        threads = [
            threading.Thread(target=client_loop, args=(i,), name=f"load-{i}")
            for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        time.sleep(0.1)  # load is in flight
        deployment.kill_replica(victim)
        for thread in threads:
            thread.join(timeout=180)
            assert not thread.is_alive(), "client thread hung after kill"

        total = succeeded = typed_errors = 0
        for bucket in outcomes:
            for query, outcome in bucket:
                total += 1
                if isinstance(outcome, ApiError):
                    typed_errors += 1
                else:
                    succeeded += 1
                    assert outcome == expected[oracle.cache_key(query)]
        assert total == clients * rounds * len(queries)
        # Failover should absorb the loss almost entirely; typed errors
        # are tolerated (a request already past its budget) but bounded.
        assert succeeded >= total * 0.9, (succeeded, typed_errors, total)
        assert deployment.replicas.info(victim).state == "down"
    finally:
        deployment.stop()


def test_stop_releases_stalled_workers():
    """Teardown with a live stall must not hang: stop() releases every
    fault before joining threads."""
    faults = FaultInjector()
    deployment = _deployment(faults, replicas=2)
    host, port = deployment.start()
    faults.stall("r0")
    faults.stall("r1")

    def fire_and_forget() -> None:
        try:
            with ServeClient(host, port, timeout=10.0) as client:
                client.predict(_queries()[0], deadline_s=5.0)
        except Exception:
            pass

    worker = threading.Thread(target=fire_and_forget)
    worker.start()
    time.sleep(0.2)
    started = time.monotonic()
    deployment.stop()
    elapsed = time.monotonic() - started
    worker.join(timeout=30)
    assert not worker.is_alive()
    assert elapsed < 30.0, f"stop() took {elapsed:.1f}s with stalled workers"
    assert faults.active() == {}


def test_capacity_spill_keeps_overloaded_replica_healthy(oracle):
    """A 429 is the replica protecting itself, not failing: the router
    spills to the successor and must not charge the replica's health."""
    faults = FaultInjector()
    deployment = _deployment(
        faults,
        service=ServiceConfig(
            workers=1, cache_ttl_s=None, max_queue=1, batch_window_s=0.0
        ),
    )
    try:
        host, port = deployment.start()
        queries = _queries()
        victim = _owner_of(deployment, oracle, queries[0])
        faults.slow(victim, 0.5)  # wedge the queue so extra load spills
        owned = [
            q for q in queries
            if _owner_of(deployment, oracle, q) == victim
        ]
        results: list[object] = []

        def submit(query: Query) -> None:
            with ServeClient(host, port, timeout=30.0) as client:
                try:
                    results.append(client.predict(query, deadline_s=20.0))
                except CapacityError as exc:
                    results.append(exc)

        threads = [
            threading.Thread(target=submit, args=(owned[0],))
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive()
        expected = oracle.predict(owned[0])
        assert all(
            r == expected or isinstance(r, CapacityError) for r in results
        )
        assert any(r == expected for r in results)
        # Spills never mark health: the replica is still up.
        assert deployment.replicas.info(victim).state == "up"
    finally:
        deployment.stop()
