"""Property suite for the consistent-hash ring (tests/serve).

Three properties carry the sharded deployment (docs/SERVING.md):

* **balance** — with vnodes points per replica, keyspace shares
  concentrate near 1/N within a tolerance bound;
* **minimal remapping** — a membership change only remaps keys whose
  owner changed; every key owned by a surviving replica stays put;
* **process stability** — assignments depend only on SHA-256 of the
  key bytes, so two processes with different ``PYTHONHASHSEED`` agree
  on every placement (the property Python's randomized ``hash()``
  would silently break).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.serve.ring import DEFAULT_VNODES, HashRing, stable_point

pytestmark = pytest.mark.tier1

replica_ids = st.lists(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=12
    ),
    min_size=1,
    max_size=8,
    unique=True,
)

keys = st.lists(
    st.text(min_size=1, max_size=40), min_size=1, max_size=200, unique=True
)


def test_stable_point_is_sha256_prefix():
    import hashlib

    digest = hashlib.sha256(b"run:abc").digest()
    assert stable_point("run:abc") == int.from_bytes(digest[:8], "big")


def test_empty_ring_raises_and_prefers_nothing():
    ring = HashRing()
    with pytest.raises(LookupError):
        ring.assign("k")
    assert ring.preferences("k") == []
    assert ring.shares() == {}


def test_membership_is_idempotent():
    ring = HashRing(["a", "b"], vnodes=8)
    ring.add("a")
    ring.remove("missing")
    assert ring.replicas == frozenset({"a", "b"})
    assert len(ring) == 2


@given(replicas=replica_ids)
def test_shares_sum_to_one(replicas):
    ring = HashRing(replicas, vnodes=32)
    shares = ring.shares()
    assert set(shares) == set(replicas)
    assert sum(shares.values()) == pytest.approx(1.0)


@given(replicas=replica_ids)
def test_balance_within_tolerance(replicas):
    """Every replica owns between 1/(3N) and 3/N of the keyspace at the
    production vnode count — the bound the router's capacity planning
    assumes (DEFAULT_VNODES keeps real fleets much tighter)."""
    ring = HashRing(replicas, vnodes=DEFAULT_VNODES)
    n = len(replicas)
    for replica, share in ring.shares().items():
        assert share > 1.0 / (3.0 * n), (replica, share, n)
        assert share <= min(1.0, 3.0 / n), (replica, share, n)


@given(replicas=replica_ids, sample=keys)
def test_assign_matches_preferences_head(replicas, sample):
    ring = HashRing(replicas, vnodes=16)
    for key in sample:
        prefs = ring.preferences(key)
        assert prefs[0] == ring.assign(key)
        assert len(prefs) == len(set(prefs)) == len(replicas)
        limited = ring.preferences(key, 2)
        assert limited == prefs[: min(2, len(replicas))]


@given(replicas=replica_ids, sample=keys, joiner=st.text(min_size=1, max_size=12))
def test_join_only_steals_for_the_joiner(replicas, sample, joiner):
    """Adding a replica never moves a key between two old replicas."""
    if joiner in replicas:
        return
    before = HashRing(replicas, vnodes=16)
    after = HashRing(replicas + [joiner], vnodes=16)
    for key in sample:
        if after.assign(key) != joiner:
            assert after.assign(key) == before.assign(key)
    moved = before.remapped_keys(after, sample)
    assert all(after.assign(k) == joiner for k in moved)


@given(replicas=replica_ids, sample=keys)
def test_leave_only_remaps_the_leavers_keys(replicas, sample):
    """Removing a replica only remaps the keys it owned; everything else
    keeps its owner (the failover invariant: losing r must not shuffle
    traffic between survivors)."""
    if len(replicas) < 2:
        return
    leaver = sorted(replicas)[0]
    before = HashRing(replicas, vnodes=16)
    after = HashRing([r for r in replicas if r != leaver], vnodes=16)
    for key in sample:
        if before.assign(key) != leaver:
            assert after.assign(key) == before.assign(key)


@given(replicas=replica_ids, sample=keys)
def test_remove_then_readd_restores_layout(replicas, sample):
    if len(replicas) < 2:
        return
    ring = HashRing(replicas, vnodes=16)
    expected = {k: ring.assign(k) for k in sample}
    victim = sorted(replicas)[-1]
    ring.remove(victim)
    ring.add(victim)
    assert {k: ring.assign(k) for k in sample} == expected


@given(replicas=replica_ids)
def test_layout_is_order_insensitive(replicas):
    forward = HashRing(replicas, vnodes=16)
    backward = HashRing(list(reversed(replicas)), vnodes=16)
    probes = [f"probe:{i}" for i in range(64)]
    assert [forward.assign(k) for k in probes] == [
        backward.assign(k) for k in probes
    ]


_SUBPROCESS_PROGRAM = """\
import json, sys
from repro.serve.ring import HashRing
spec = json.load(sys.stdin)
ring = HashRing(spec["replicas"], vnodes=spec["vnodes"])
print(json.dumps({
    "assign": {k: ring.assign(k) for k in spec["keys"]},
    "preferences": {k: ring.preferences(k) for k in spec["keys"]},
}))
"""


def _ring_in_subprocess(spec: dict, hash_seed: str) -> dict:
    env = dict(os.environ, PYTHONHASHSEED=hash_seed)
    src_root = os.path.dirname(
        os.path.dirname(os.path.abspath(sys.modules["repro"].__file__))
    )
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_PROGRAM],
        input=json.dumps(spec),
        env=env,
        capture_output=True,
        text=True,
        timeout=60,
        check=True,
    )
    return json.loads(proc.stdout)


def test_assignment_is_stable_across_hash_seeds():
    """The whole deployment rests on this: a router and a restarted
    replica (different ``PYTHONHASHSEED``, hence different ``hash()``)
    must derive identical ownership and failover order."""
    spec = {
        "replicas": ["r0", "r1", "r2", "r3"],
        "vnodes": DEFAULT_VNODES,
        "keys": [f"run:key-{i}" for i in range(50)],
    }
    local = HashRing(spec["replicas"], vnodes=spec["vnodes"])
    expected = {
        "assign": {k: local.assign(k) for k in spec["keys"]},
        "preferences": {k: local.preferences(k) for k in spec["keys"]},
    }
    for seed in ("0", "1", "12345"):
        assert _ring_in_subprocess(spec, seed) == expected, seed
