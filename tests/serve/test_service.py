"""The prediction service: lifecycle, coalescing identity, deadlines,
backpressure, request parsing and the metrics snapshot.

The service is driven directly (no HTTP) on private event loops; the
acceptance property — every served answer bit-identical to a direct
scalar ``repro.api`` evaluation — is asserted with full
``PredictionResult`` equality.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api import (
    CapacityError,
    DeadlineExceededError,
    Predictor,
    Query,
    SchemaVersionError,
    ValidationError,
)
from repro.api.types import SCHEMA_VERSION
from repro.serve.service import PredictionService, ServiceConfig


def run_service(coro_factory, config=None):
    """Boot a service, run ``coro_factory(service)``, stop, return value."""

    async def scenario():
        service = PredictionService(config)
        await service.start()
        try:
            return await coro_factory(service)
        finally:
            await service.stop()

    return asyncio.run(scenario())


QUERIES = [
    Query(workload=w, size_gb=s, config=c, num_threads=t)
    for w, s in (("dgemm", 4.0), ("xsbench", 2.5))
    for c in ("DRAM", "HBM")
    for t in (32, 64)
]


class TestLifecycle:
    def test_state_progression(self):
        async def scenario():
            service = PredictionService()
            assert service.state == "created"
            assert not service.running
            await service.start()
            assert service.state == "running"
            assert service.healthz()["status"] == "ok"
            await service.stop()
            assert service.state == "stopped"
            assert service.healthz()["status"] == "stopped"

        asyncio.run(scenario())

    def test_double_start_rejected(self):
        async def scenario():
            service = PredictionService()
            await service.start()
            with pytest.raises(RuntimeError):
                await service.start()
            await service.stop()

        asyncio.run(scenario())

    def test_stopped_service_refuses_requests(self):
        async def scenario():
            service = PredictionService()
            await service.start()
            await service.stop()
            with pytest.raises(CapacityError):
                await service.handle_predict(
                    {"query": QUERIES[0].to_dict()}
                )

        asyncio.run(scenario())

    def test_restart_after_stop(self):
        async def scenario():
            service = PredictionService()
            await service.start()
            await service.stop()
            await service.start()
            envelope = await service.handle_predict(
                {"query": QUERIES[0].to_dict()}
            )
            await service.stop()
            return envelope

        envelope = asyncio.run(scenario())
        assert envelope["meta"]["queries"] == 1


class TestCoalescingIdentity:
    def test_concurrent_singles_match_direct_scalar_evaluation(self):
        # N concurrent single-query requests coalesce into dense batches;
        # each answer must equal the scalar facade's, bit for bit.
        async def scenario(service):
            return await asyncio.gather(
                *[
                    service.handle_predict({"query": q.to_dict()})
                    for q in QUERIES
                ]
            )

        envelopes = run_service(
            scenario, ServiceConfig(batch_window_s=0.01)
        )
        oracle = Predictor()
        for query, envelope in zip(QUERIES, envelopes):
            served = envelope["results"][0]
            assert served == oracle.predict(query).to_dict()
        oracle.close()

    def test_grid_request_matches_expanded_singles(self):
        grid = {
            "workloads": ["dgemm"],
            "sizes_gb": [2.0, 4.0],
            "configs": ["DRAM", "HBM"],
            "num_threads": [64],
        }

        async def scenario(service):
            return await service.handle_predict({"grid": grid})

        envelope = run_service(scenario)
        oracle = Predictor()
        expected = [
            oracle.predict(
                Query(workload="dgemm", size_gb=s, config=c, num_threads=64)
            ).to_dict()
            for s in (2.0, 4.0)
            for c in ("DRAM", "HBM")
        ]
        assert envelope["results"] == expected
        oracle.close()

    def test_infeasible_cell_serializes_as_error_info(self):
        async def scenario(service):
            return await service.handle_predict(
                {
                    "query": Query(
                        workload="gups", size_gb=32.0, config="HBM"
                    ).to_dict()
                }
            )

        envelope = run_service(scenario)
        (result,) = envelope["results"]
        assert result["metric"] is None
        assert result["error"]["code"] == "infeasible_config"

    def test_cache_hits_answer_identically(self):
        query = QUERIES[0]

        async def scenario(service):
            first = await service.handle_predict({"query": query.to_dict()})
            second = await service.handle_predict({"query": query.to_dict()})
            return first, second

        first, second = run_service(scenario)
        assert first["meta"]["cached"] == 0
        assert second["meta"]["cached"] == 1
        assert first["results"] == second["results"]


class TestDeadlinesAndBackpressure:
    def test_deadline_exceeded_while_queued(self):
        # The batch window (50 ms) exceeds the deadline (1 ms), so the
        # request times out while its query is still queued.
        async def scenario(service):
            with pytest.raises(DeadlineExceededError):
                await service.handle_predict(
                    {"query": QUERIES[0].to_dict(), "deadline_s": 0.001}
                )
            return service.metrics_snapshot()

        snapshot = run_service(
            scenario, ServiceConfig(batch_window_s=0.05)
        )
        counters = snapshot["service"]["counters"]
        assert counters.get("serve.deadline_exceeded") == 1.0

    def test_oversized_request_rejected_up_front(self):
        async def scenario(service):
            with pytest.raises(CapacityError):
                await service.handle_predict(
                    {
                        "grid": {
                            "workloads": ["dgemm"],
                            "sizes_gb": [float(s) for s in range(1, 6)],
                            "configs": ["DRAM"],
                        }
                    }
                )

        run_service(scenario, ServiceConfig(max_request_queries=4))

    def test_full_queue_rejects_with_capacity_error(self):
        async def scenario(service):
            # Fill the admission queue synchronously (no await), then
            # one more submission must bounce.
            futures = [
                service._coalescer.submit(q, f"k{i}")
                for i, q in enumerate(QUERIES[:2])
            ]
            with pytest.raises(CapacityError):
                service._coalescer.submit(QUERIES[2], "overflow")
            await asyncio.gather(*futures)

        run_service(scenario, ServiceConfig(max_queue=2))


class TestRequestParsing:
    def test_exactly_one_form_required(self):
        q = QUERIES[0].to_dict()
        with pytest.raises(ValidationError, match="exactly one"):
            PredictionService.parse_queries({})
        with pytest.raises(ValidationError, match="exactly one"):
            PredictionService.parse_queries(
                {"query": q, "queries": [q]}
            )

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValidationError, match="unknown field"):
            PredictionService.parse_queries(
                {"query": QUERIES[0].to_dict(), "tenant": "a"}
            )

    def test_queries_must_be_a_nonempty_list(self):
        with pytest.raises(ValidationError):
            PredictionService.parse_queries({"queries": []})
        with pytest.raises(ValidationError):
            PredictionService.parse_queries({"queries": "not-a-list"})

    def test_schema_version_negotiation(self):
        body = {"query": QUERIES[0].to_dict()}
        assert len(PredictionService.parse_queries(body)) == 1
        assert len(
            PredictionService.parse_queries(
                dict(body, schema_version=SCHEMA_VERSION)
            )
        ) == 1
        with pytest.raises(SchemaVersionError):
            PredictionService.parse_queries(
                dict(body, schema_version=SCHEMA_VERSION + 1)
            )

    def test_bad_deadline_rejected(self):
        async def scenario(service):
            for bad in (0, -1.0, "soon", True):
                with pytest.raises(ValidationError):
                    await service.handle_predict(
                        {"query": QUERIES[0].to_dict(), "deadline_s": bad}
                    )

        run_service(scenario)


class TestMetricsSnapshot:
    def test_snapshot_counts_constituent_queries(self):
        async def scenario(service):
            await asyncio.gather(
                *[
                    service.handle_predict({"query": q.to_dict()})
                    for q in QUERIES
                ]
            )
            return service.metrics_snapshot()

        snapshot = run_service(scenario, ServiceConfig(batch_window_s=0.01))
        coalescer = snapshot["coalescer"]
        assert coalescer["enabled"]
        assert coalescer["submitted"] == len(QUERIES)
        assert coalescer["batched_queries"] == len(QUERIES)
        # Coalescing happened: fewer dispatches than queries.
        assert coalescer["batches"] < len(QUERIES)
        # The executor section counts every constituent cell.
        assert snapshot["executor"]["batched_cells"] == len(QUERIES)
        assert snapshot["cache"]["misses"] == len(QUERIES)

    def test_naive_configuration_disables_coalescing(self):
        config = ServiceConfig(coalesce=False, cache_entries=0)

        async def scenario(service):
            await asyncio.gather(
                *[
                    service.handle_predict({"query": q.to_dict()})
                    for q in QUERIES[:4]
                ]
            )
            return service.metrics_snapshot()

        snapshot = run_service(scenario, config)
        assert not snapshot["coalescer"]["enabled"]
        assert snapshot["coalescer"]["submitted"] == 0
        assert snapshot["cache"]["max_entries"] == 0

    def test_naive_mode_still_validates_at_the_boundary(self):
        from repro.api import UnknownWorkloadError

        config = ServiceConfig(coalesce=False, cache_entries=0)

        async def scenario(service):
            with pytest.raises(UnknownWorkloadError):
                await service.handle_predict(
                    {
                        "query": {
                            "workload": "linpack",
                            "size_gb": 4.0,
                            "config": "DRAM",
                        }
                    }
                )

        run_service(scenario, config)


class TestServiceConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"machine": "epyc"},
            {"workers": 0},
            {"max_batch": 0},
            {"max_queue": 0},
            {"batch_window_s": -0.5},
            {"cache_entries": -1},
            {"default_deadline_s": 0.0},
        ],
    )
    def test_invalid_knobs_raise(self, kwargs):
        with pytest.raises(ValidationError):
            ServiceConfig(**kwargs)
