"""`/v1/plan` over real TCP: round trip, errors, negotiation, routing.

One coalescing server boots per module; the capacity paths (429 over
the candidate cap, 504 past the deadline) get their own short-lived
servers so the shared one stays deterministic.  The sharded router is
exercised with a 2-replica thread-backend deployment, and the CLI
identity test pins the acceptance criterion: ``repro plan --json`` and
``POST /v1/plan`` produce byte-identical plans for the same spec.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.api.errors import (
    CapacityError,
    DeadlineExceededError,
    InfeasiblePlanError,
    ValidationError,
)
from repro.api.facade import Predictor
from repro.api.plan import PlanRequest, PlanResult, PoolEntry, TrafficItem
from repro.api.types import SCHEMA_VERSION
from repro.cli import main as cli_main
from repro.plan import CapacityPlanner, check_plan
from repro.serve.client import ServeClient
from repro.serve.service import ServiceConfig
from repro.serve.shard import ShardConfig, ShardDeployment
from repro.serve.threadserver import ServerThread

REQUEST = PlanRequest(
    mix=(
        TrafficItem(workload="dgemm", size_gb=4.0, num_threads=64, weight=0.001),
        TrafficItem(workload="gups", size_gb=2.0, num_threads=32, weight=0.002),
    ),
    pool=(
        PoolEntry(machine="knl7210", nodes=8),
        PoolEntry(machine="xeonmax9480", nodes=8),
    ),
)


@pytest.fixture(scope="module")
def server():
    with ServerThread(ServiceConfig(batch_window_s=0.001)) as thread:
        yield thread


@pytest.fixture()
def client(server):
    with ServeClient(server.host, server.port) as c:
        yield c


@pytest.fixture(scope="module")
def direct():
    predictor = Predictor()
    try:
        yield CapacityPlanner(predictor).plan(REQUEST)
    finally:
        predictor.close()


class TestPlanRoundTrip:
    def test_served_plan_matches_direct_solve(self, client, direct):
        served = client.plan(REQUEST)
        assert served == direct
        assert check_plan(REQUEST, served) == []

    def test_envelope_shape_and_meta(self, client):
        status, body = client.request(
            "POST", "/v1/plan", {"plan": REQUEST.to_dict()}
        )
        assert status == 200
        assert body["schema_version"] == SCHEMA_VERSION
        assert PlanResult.from_dict(body["plan"]) is not None
        meta = body["meta"]
        assert meta["items"] == len(REQUEST.mix)
        assert meta["pool"] == len(REQUEST.pool)
        assert meta["candidates"] == REQUEST.candidate_count()
        assert meta["elapsed_ms"] >= 0

    def test_plan_metrics_counted(self, client):
        client.plan(REQUEST)
        snapshot = client.metrics()
        counters = snapshot["service"]["counters"]
        assert counters.get("serve.plans", 0) >= 1
        assert any(
            key.startswith("serve.plan_ms")
            for key in snapshot["service"]["histograms"]
        )


class TestPlanErrors:
    def test_missing_plan_field_is_400(self, client):
        status, body = client.request("POST", "/v1/plan", {"spec": {}})
        assert status == 400
        assert body["error"]["code"] == "validation"

    def test_wrong_method_is_405(self, client):
        status, _ = client.request("GET", "/v1/plan")
        assert status == 405

    def test_unknown_machine_is_404(self, client):
        spec = REQUEST.to_dict()
        spec["pool"] = [{"machine": "epyc", "nodes": 4}]
        status, body = client.request("POST", "/v1/plan", {"plan": spec})
        assert status == 404
        assert body["error"]["code"] == "unknown_machine"

    def test_empty_mix_is_400(self, client):
        spec = REQUEST.to_dict()
        spec["mix"] = []
        status, body = client.request("POST", "/v1/plan", {"plan": spec})
        assert status == 400
        assert body["error"]["code"] == "empty_mix"

    def test_infeasible_plan_rehydrates_as_409(self, client):
        overloaded = PlanRequest(
            mix=(TrafficItem(workload="dgemm", size_gb=4.0, weight=1e6),),
            pool=(PoolEntry(machine="knl7210", nodes=1),),
        )
        status, body = client.request(
            "POST", "/v1/plan", {"plan": overloaded.to_dict()}
        )
        assert status == 409
        assert body["error"]["code"] == "infeasible_plan"
        with pytest.raises(InfeasiblePlanError):
            client.plan(overloaded)

    def test_unsupported_schema_is_400(self, client):
        status, body = client.request(
            "POST",
            "/v1/plan",
            {"plan": REQUEST.to_dict(), "schema_version": SCHEMA_VERSION + 1},
        )
        assert status == 400
        assert body["error"]["code"] == "unsupported_schema"

    def test_candidate_cap_is_429(self):
        # 2 items x (2 machines x 3 configs) = 12 candidates > the cap.
        config = ServiceConfig(max_request_queries=4)
        with ServerThread(config) as thread:
            with ServeClient(thread.host, thread.port) as client:
                with pytest.raises(CapacityError) as excinfo:
                    client.plan(REQUEST)
        assert excinfo.value.details["max_request_queries"] == 4

    def test_deadline_exceeded_is_504(self):
        with ServerThread(ServiceConfig()) as thread:
            thread.service.fault_hook = lambda: time.sleep(0.5)
            with ServeClient(thread.host, thread.port) as client:
                with pytest.raises(DeadlineExceededError):
                    client.plan(REQUEST, deadline_s=0.05)


class TestSchemaNegotiation:
    def test_downlevel_client_gets_identical_plan(self, server, direct):
        with ServeClient(server.host, server.port, schema_version=1) as old:
            assert old.plan(REQUEST) == direct

    def test_unsupported_pin_rejected_client_side(self, server):
        with pytest.raises(ValidationError, match="cannot pin"):
            ServeClient(server.host, server.port, schema_version=99)


class TestRouterForwarding:
    def test_sharded_plan_matches_direct_solve(self, direct):
        config = ShardConfig(
            replicas=2,
            backend="thread",
            service=ServiceConfig(workers=1, cache_ttl_s=None),
            probe_interval_s=0.0,
        )
        with ShardDeployment(config) as (host, port):
            with ServeClient(host, port) as client:
                first = client.plan(REQUEST)
                again = client.plan(REQUEST)
                snapshot = client.metrics()
        assert first == direct
        assert again == direct
        counters = snapshot["service"]["counters"]
        assert counters.get("router.plans", 0) >= 2


class TestCliIdentity:
    def test_cli_json_matches_served_plan(self, client, direct, capsys):
        served = client.plan(REQUEST)
        code = cli_main(
            [
                "plan",
                "--mix", "dgemm:4:64:0.001",
                "--mix", "gups:2:32:0.002",
                "--pool", "knl7210:8",
                "--pool", "xeonmax9480:8",
                "--json",
            ]
        )
        assert code == 0
        printed = PlanResult.from_dict(json.loads(capsys.readouterr().out))
        assert printed == served == direct
        assert printed.to_dict() == served.to_dict()
