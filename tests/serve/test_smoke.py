"""The load generator and the CI smoke harness, at test-sized scale."""

from __future__ import annotations

import pytest

from repro.api import Predictor
from repro.serve.loadgen import (
    _partition,
    build_query_pool,
    measure_serve,
    run_smoke,
)


def test_query_pool_keys_are_pairwise_distinct():
    predictor = Predictor()
    pool = build_query_pool(96, predictor=predictor)
    keys = {predictor.cache_key(q) for q in pool}
    assert len(pool) == 96
    assert len(keys) == 96
    predictor.close()


def test_query_pool_shares_a_small_profile_basis():
    pool = build_query_pool(64)
    profiles = {(q.workload, q.size_gb) for q in pool}
    # Many queries, few (workload, size) profiles: the columnar engine's
    # table setup amortizes across the pool.
    assert len(profiles) <= 8


def test_partition_deals_round_robin_and_drops_empties():
    pool = build_query_pool(5)
    partitions = _partition(pool, 3)
    assert [len(p) for p in partitions] == [2, 2, 1]
    assert _partition(pool[:2], 8) == [[pool[0]], [pool[1]]]


@pytest.mark.slow
def test_run_smoke_passes_at_small_scale():
    report = run_smoke(
        clients=8, requests_per_client=2, workers=2, check_sample=4
    )
    assert report["phase"]["errors"] == 0
    assert report["phase"]["requests"] == 16
    assert report["identity"]["bit_identical"]
    assert report["violations"] == 0
    assert report["invariant_audited"] >= 1


@pytest.mark.slow
def test_measure_serve_reports_all_phases_at_small_scale():
    document = measure_serve(
        clients=4, requests_per_client=2, workers=2, repeats=1,
        identity_sample=4,
    )
    for phase in ("coalesced", "hot_cache", "naive"):
        assert document[phase]["errors"] == 0
        assert document[phase]["throughput_rps"] > 0
    assert document["identity"]["bit_identical"]
    assert document["coalescing"]["batched_queries"] >= 8
