"""The TTL+LRU result cache, driven by an injected clock."""

from __future__ import annotations

import pytest

from repro.serve.cache import TTLCache


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture()
def clock():
    return FakeClock()


def test_hit_and_miss_accounting(clock):
    cache: TTLCache[str] = TTLCache(4, ttl_s=10.0, clock=clock)
    assert cache.get("a") is None
    cache.put("a", "va")
    assert cache.get("a") == "va"
    stats = cache.stats()
    assert (stats["hits"], stats["misses"]) == (1, 1)
    assert cache.hit_rate == 0.5


def test_entries_expire_after_ttl(clock):
    cache: TTLCache[str] = TTLCache(4, ttl_s=10.0, clock=clock)
    cache.put("a", "va")
    clock.now = 9.999
    assert cache.get("a") == "va"
    clock.now = 10.0
    assert cache.get("a") is None
    assert cache.expirations == 1
    assert len(cache) == 0


def test_lru_eviction_prefers_recently_used(clock):
    cache: TTLCache[str] = TTLCache(2, ttl_s=None, clock=clock)
    cache.put("a", "va")
    cache.put("b", "vb")
    assert cache.get("a") == "va"  # refresh a's recency
    cache.put("c", "vc")  # evicts b, the least recently used
    assert cache.get("b") is None
    assert cache.get("a") == "va"
    assert cache.get("c") == "vc"
    assert cache.evictions == 1


def test_no_ttl_means_pure_lru(clock):
    cache: TTLCache[str] = TTLCache(4, ttl_s=None, clock=clock)
    cache.put("a", "va")
    clock.now = 1e9
    assert cache.get("a") == "va"


def test_zero_entries_disables_the_cache(clock):
    cache: TTLCache[str] = TTLCache(0, ttl_s=None, clock=clock)
    assert not cache.enabled
    cache.put("a", "va")
    assert cache.get("a") is None
    assert len(cache) == 0
    assert cache.misses == 1


def test_invalid_parameters_raise():
    with pytest.raises(ValueError):
        TTLCache(-1)
    with pytest.raises(ValueError):
        TTLCache(4, ttl_s=0.0)


def test_put_overwrites_in_place(clock):
    cache: TTLCache[str] = TTLCache(2, ttl_s=None, clock=clock)
    cache.put("a", "v1")
    cache.put("a", "v2")
    assert cache.get("a") == "v2"
    assert len(cache) == 1
