"""The sharded deployment: routing, cache tiers, health, aggregation.

Thread-backend deployments throughout (fast to boot, faultable); the
process backend is exercised by the CLI integration test and the
benchmark.  The oracle for every answer is a direct
:meth:`repro.api.Predictor.predict` — served results must be
bit-identical to it no matter which replica answered.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import Predictor
from repro.api.errors import CapacityError, ValidationError
from repro.api.types import Query
from repro.serve.client import ServeClient
from repro.serve.service import ServiceConfig
from repro.serve.shard import ShardConfig, ShardDeployment


def _queries() -> list[Query]:
    return [
        Query(workload=w, size_gb=g, config=c, num_threads=64)
        for w, g in (("gups", 16.0), ("xsbench", 32.0))
        for c in ("DRAM", "HBM", "Cache Mode")
    ]


@pytest.fixture(scope="module")
def oracle():
    predictor = Predictor()
    yield predictor
    predictor.close()


@pytest.fixture(scope="module")
def deployment():
    config = ShardConfig(
        replicas=2,
        backend="thread",
        service=ServiceConfig(workers=1, cache_ttl_s=None),
        probe_interval_s=0.0,  # deterministic: no background transitions
    )
    with ShardDeployment(config) as (host, port):
        yield ShardDeployment, host, port


def test_config_is_validated():
    with pytest.raises(ValidationError):
        ShardConfig(backend="fork")
    with pytest.raises(ValidationError):
        ShardConfig(replicas=0)
    with pytest.raises(ValidationError):
        ShardConfig(attempt_timeout_s=0.0)


def test_router_answers_bit_identically(deployment, oracle):
    _, host, port = deployment
    queries = _queries()
    with ServeClient(host, port, timeout=60.0) as client:
        results = client.predict_many(queries)
    assert [oracle.predict(q) for q in queries] == results


def test_router_cache_tier_absorbs_repeats(deployment, oracle):
    _, host, port = deployment
    query = _queries()[0]
    with ServeClient(host, port, timeout=60.0) as client:
        first = client.predict(query)
        before = client.metrics()["service"]["counters"].get(
            "router.cache_hits", 0.0
        )
        second = client.predict(query)
        after = client.metrics()["service"]["counters"]["router.cache_hits"]
    assert first == second == oracle.predict(query)
    assert after == before + 1.0


def test_healthz_reports_router_role_and_replica_states(deployment):
    _, host, port = deployment
    with ServeClient(host, port, timeout=30.0) as client:
        health = client.healthz()
        version = client.version()
    assert health["status"] == "ok"
    assert health["role"] == "router"
    assert sorted(health["routable"]) == ["r0", "r1"]
    states = {
        rid: entry["state"]
        for rid, entry in health["replica_set"]["replicas"].items()
    }
    assert states == {"r0": "up", "r1": "up"}
    assert health["replica_set"]["ring"]["replicas"] == ["r0", "r1"]
    assert version["service"] == "repro.serve.shard"
    assert version["replicas"] == 2


def test_forwards_follow_ring_assignment(oracle):
    """Key affinity end to end: with the router cache off, every query
    is forwarded to exactly the replica the ring assigns its key to."""
    config = ShardConfig(
        replicas=2,
        backend="thread",
        service=ServiceConfig(workers=1, cache_ttl_s=None),
        probe_interval_s=0.0,
        router_cache_entries=0,
    )
    deployment = ShardDeployment(config)
    with deployment as (host, port):
        queries = _queries()
        ring = deployment.replicas.ring()
        expected: dict[str, int] = {}
        for query in queries:
            owner = ring.assign(oracle.cache_key(query))
            expected[owner] = expected.get(owner, 0) + 1
        with ServeClient(host, port, timeout=60.0) as client:
            for query in queries:
                client.predict(query)
            counters = client.metrics()["service"]["counters"]
    forwarded = {
        rid: counters.get(f"router.forwards{{replica={rid}}}", 0.0)
        for rid in ("r0", "r1")
    }
    assert forwarded == {
        rid: float(expected.get(rid, 0)) for rid in ("r0", "r1")
    }


def test_metrics_aggregate_sums_per_replica_counters(oracle):
    """Fleet totals are sums over all replicas, not a read of whichever
    replica answered last — the cross-process stats race regression.

    Drive the two replicas to *unequal* counts by talking to them
    directly, then check the router's aggregate equals the sum (and so
    matches neither individual replica)."""
    config = ShardConfig(
        replicas=2,
        backend="thread",
        service=ServiceConfig(workers=1, cache_ttl_s=None),
        probe_interval_s=0.0,
    )
    deployment = ShardDeployment(config)
    with deployment as (host, port):
        queries = _queries()
        addresses = deployment.addresses()
        loads = {"r0": queries[:4], "r1": queries[4:6]}
        for rid, batch in loads.items():
            rhost, rport = addresses[rid]
            with ServeClient(rhost, rport, timeout=60.0) as client:
                for query in batch:
                    client.predict(query)
        with ServeClient(host, port, timeout=30.0) as client:
            snapshot = client.metrics()
    per_replica = snapshot["replicas"]
    requests_key = "serve.requests{endpoint=/v1/predict,status=200}"
    individual = [
        per_replica[rid]["service"]["counters"][requests_key]
        for rid in ("r0", "r1")
    ]
    assert individual == [4.0, 2.0]
    aggregate = snapshot["aggregate"]
    assert aggregate["reachable"] == 2
    assert aggregate["service"]["counters"][requests_key] == 6.0
    executed = [
        per_replica[rid]["executor"]["executed"] for rid in ("r0", "r1")
    ]
    assert aggregate["executor"]["executed"] == sum(executed)
    assert aggregate["cache"]["misses"] == sum(
        per_replica[rid]["cache"]["misses"] for rid in ("r0", "r1")
    )
    merged_requests = snapshot["aggregate"]["service"]["histograms"][
        "serve.request_ms{endpoint=/v1/predict}"
    ]
    assert merged_requests["count"] == 6


def test_restart_bumps_generation_and_keeps_answers_identical(oracle):
    config = ShardConfig(
        replicas=2,
        backend="thread",
        service=ServiceConfig(workers=1, cache_ttl_s=None),
        probe_interval_s=0.0,
    )
    deployment = ShardDeployment(config)
    with deployment:
        queries = _queries()
        with deployment.shard_client(
            keyer=oracle.cache_key, timeout=30.0
        ) as client:
            assert client.predict(queries[0]) == oracle.predict(queries[0])
            assert deployment.replicas.generation("r0") == 0
            deployment.restart_replica("r0")
            assert deployment.replicas.generation("r0") == 1
            # The same client keeps working: its pooled connection to the
            # dead twin is keyed on (replica, generation) and re-dials.
            for query in queries:
                assert client.predict(query) == oracle.predict(query)


def test_no_routable_replicas_is_a_typed_capacity_error():
    config = ShardConfig(
        replicas=2,
        backend="thread",
        service=ServiceConfig(workers=1, cache_ttl_s=None),
        probe_interval_s=0.0,
        fail_after=1,
        attempt_timeout_s=2.0,
        router_cache_entries=0,
    )
    deployment = ShardDeployment(config)
    with deployment as (host, port):
        deployment.kill_replica("r0")
        deployment.kill_replica("r1")
        with ServeClient(host, port, timeout=30.0) as client:
            query = _queries()[0]
            with pytest.raises(CapacityError):
                client.predict(query)
            # Both replicas were charged and downed; the next request is
            # rejected up front with the same typed envelope.
            assert deployment.replicas.routable_ids() == []
            with pytest.raises(CapacityError):
                client.predict(query)
            health = client.healthz()
    assert health["status"] == "degraded"
    assert health["routable"] == []


def test_shard_client_routes_and_fails_over(oracle):
    config = ShardConfig(
        replicas=3,
        backend="thread",
        service=ServiceConfig(workers=1, cache_ttl_s=None),
        probe_interval_s=0.0,
        fail_after=1,
    )
    deployment = ShardDeployment(config)
    with deployment:
        queries = _queries()
        ring = deployment.replicas.ring()
        by_owner: dict[str, Query] = {}
        for query in queries:
            by_owner.setdefault(ring.assign(oracle.cache_key(query)), query)
        victim, query = next(iter(by_owner.items()))
        with deployment.shard_client(
            keyer=oracle.cache_key, timeout=30.0
        ) as client:
            deployment.kill_replica(victim)
            # Failover to the ring successor, bit-identical, and the dead
            # replica is discovered passively.
            assert client.predict(query) == oracle.predict(query)
            assert deployment.replicas.info(victim).state == "down"
            assert victim not in deployment.replicas.routable_ids()


def test_concurrent_router_clients_agree_with_oracle(deployment, oracle):
    _, host, port = deployment
    queries = _queries()
    expected = [oracle.predict(q) for q in queries]
    errors: list[Exception] = []

    def loop() -> None:
        try:
            with ServeClient(host, port, timeout=60.0) as client:
                for _ in range(3):
                    assert client.predict_many(queries) == expected
        except Exception as exc:  # surfaces in the main thread
            errors.append(exc)

    threads = [threading.Thread(target=loop) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive(), "client thread hung"
    assert errors == []
