"""Load-generator error paths: the closed loop against broken servers.

The loadgen's contract is that a phase always terminates with every
request accounted as succeeded or failed — against servers that refuse
connections, drop mid-body, or answer nothing but 429.  Each scenario
here runs a real socket server (or none at all) so the client-side
classification, retry, and give-up logic is exercised on the wire.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.api.errors import CapacityError
from repro.api.types import SCHEMA_VERSION, Query
from repro.serve.client import ServeClient
from repro.serve.loadgen import build_keyed_pool, run_shard_phase
from repro.serve.registry import ReplicaSet

pytestmark = pytest.mark.tier1


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class _FakeServer:
    """Accept loop that hands every connection to ``handler``."""

    def __init__(self, handler) -> None:
        self._handler = handler
        self._listener = socket.socket()
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(16)
        self.host, self.port = self._listener.getsockname()
        self._closing = False
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            try:
                self._handler(conn)
            finally:
                conn.close()

    def close(self) -> None:
        self._closing = True
        self._listener.close()
        self._thread.join(timeout=10)

    def __enter__(self) -> "_FakeServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _read_request(conn: socket.socket) -> bytes:
    """Consume one HTTP request (headers + content-length body)."""
    conn.settimeout(10.0)
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = conn.recv(4096)
        if not chunk:
            return data
        data += chunk
    head, _, rest = data.partition(b"\r\n\r\n")
    length = 0
    for line in head.split(b"\r\n"):
        name, sep, value = line.partition(b":")
        if sep and name.strip().lower() == b"content-length":
            length = int(value.strip())
    while len(rest) < length:
        chunk = conn.recv(4096)
        if not chunk:
            break
        rest += chunk
    return head + b"\r\n\r\n" + rest


def _respond(conn: socket.socket, status: str, body: bytes) -> None:
    conn.sendall(
        (
            f"HTTP/1.1 {status}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n\r\n"
        ).encode("latin-1")
        + body
    )


def _query() -> Query:
    return Query(workload="gups", size_gb=16.0, config="DRAM", num_threads=64)


def test_connection_refused_raises_oserror():
    port = _free_port()  # nothing is listening here
    with ServeClient("127.0.0.1", port, timeout=5.0) as client:
        with pytest.raises(OSError):
            client.predict(_query())


def test_mid_body_disconnect_is_a_connection_error():
    """A server that dies mid-response must surface as a transport
    error (after the one keep-alive retry), never as a half-parsed
    envelope."""

    def handler(conn: socket.socket) -> None:
        _read_request(conn)
        conn.sendall(
            b"HTTP/1.1 200 OK\r\nContent-Length: 4096\r\n\r\n{\"resul"
        )
        # close() in the accept loop drops the rest of the body

    with _FakeServer(handler) as server:
        with ServeClient(server.host, server.port, timeout=5.0) as client:
            with pytest.raises(ConnectionError):
                client.predict(_query())


def test_backpressure_envelope_rehydrates_as_capacity_error():
    envelope = json.dumps(
        {
            "schema_version": SCHEMA_VERSION,
            "error": {"code": "capacity", "message": "queue full"},
        }
    ).encode("utf-8")

    def handler(conn: socket.socket) -> None:
        while _read_request(conn).strip():
            _respond(conn, "429 Too Many Requests", envelope)

    with _FakeServer(handler) as server:
        with ServeClient(server.host, server.port, timeout=5.0) as client:
            with pytest.raises(CapacityError):
                client.predict(_query())


def _replica_set_at(host: str, port: int) -> ReplicaSet:
    replicas = ReplicaSet(fail_after=2)
    replicas.register("r0", host, port)
    return replicas


def test_shard_phase_terminates_against_dead_replicas():
    """Every request is accounted failed — promptly, no hang — when the
    whole fleet is unreachable."""
    port = _free_port()
    pool = build_keyed_pool(6)
    phase, responses = run_shard_phase(
        "dead-fleet",
        _replica_set_at("127.0.0.1", port),
        [pool[:3], pool[3:]],
        request_deadline_s=1.0,
        backoff_base_s=0.01,
        backoff_cap_s=0.05,
        timeout_s=5.0,
    )
    assert responses == []
    assert phase.offered == 6
    assert phase.succeeded == 0
    assert phase.failed == 6
    assert phase.goodput_rps == 0.0


def test_shard_phase_retries_429s_then_gives_up():
    """Pure backpressure: the closed loop must retry with backoff (the
    retries counter proves it) and still terminate at the request
    deadline with everything accounted."""
    envelope = json.dumps(
        {
            "schema_version": SCHEMA_VERSION,
            "error": {"code": "capacity", "message": "always full"},
        }
    ).encode("utf-8")

    def handler(conn: socket.socket) -> None:
        while _read_request(conn).strip():
            _respond(conn, "429 Too Many Requests", envelope)

    pool = build_keyed_pool(4)
    with _FakeServer(handler) as server:
        phase, responses = run_shard_phase(
            "all-429",
            _replica_set_at(server.host, server.port),
            [pool[:2], pool[2:]],
            request_deadline_s=0.8,
            backoff_base_s=0.01,
            backoff_cap_s=0.05,
            timeout_s=5.0,
        )
    assert responses == []
    assert phase.failed == 4
    assert phase.retries > 0
    assert phase.success_rate == 0.0


def test_shard_phase_survives_mid_body_disconnects():
    def handler(conn: socket.socket) -> None:
        _read_request(conn)
        conn.sendall(b"HTTP/1.1 200 OK\r\nContent-Length: 512\r\n\r\n{")

    pool = build_keyed_pool(4)
    with _FakeServer(handler) as server:
        phase, responses = run_shard_phase(
            "mid-body",
            _replica_set_at(server.host, server.port),
            [pool[:2], pool[2:]],
            request_deadline_s=1.0,
            backoff_base_s=0.01,
            timeout_s=5.0,
        )
    assert responses == []
    assert phase.offered == 4
    assert phase.succeeded == 0
    assert phase.failed == 4
