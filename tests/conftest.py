"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.core.executor import executor_from_env
from repro.core.runner import ExperimentRunner
from repro.engine.perfmodel import PerformanceModel
from repro.machine.presets import knl7210
from repro.memory.modes import MCDRAMConfig, MemorySystem
from repro.runtime.simos import SimulatedOS

# Pinned hypothesis profile: derandomized (examples derive from the test
# body, not a random seed) so property runs — including the metamorphic
# suite in tests/checks/ — are bit-for-bit reproducible locally and in
# CI.  Override with HYPOTHESIS_PROFILE (e.g. a personal "dev" profile
# registered in a local conftest) when hunting for new counterexamples.
settings.register_profile(
    "repro", derandomize=True, deadline=None, max_examples=25
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))


@pytest.fixture(scope="session")
def machine():
    """The paper's testbed machine model (immutable, session-scoped)."""
    return knl7210()


@pytest.fixture()
def flat_memory():
    return MemorySystem(MCDRAMConfig.flat())


@pytest.fixture()
def cache_memory():
    return MemorySystem(MCDRAMConfig.cache())


@pytest.fixture()
def hybrid_memory():
    return MemorySystem(MCDRAMConfig.hybrid(0.5))


@pytest.fixture()
def flat_model(machine, flat_memory):
    return PerformanceModel(machine, flat_memory)


@pytest.fixture()
def cache_model_pm(machine, cache_memory):
    return PerformanceModel(machine, cache_memory)


@pytest.fixture()
def flat_os():
    return SimulatedOS(MCDRAMConfig.flat())


@pytest.fixture()
def cache_os():
    return SimulatedOS(MCDRAMConfig.cache())


@pytest.fixture(scope="session")
def runner(machine):
    """The experiment runner — wrapped in a SweepExecutor when the
    REPRO_JOBS / REPRO_EXECUTOR / REPRO_CACHE_DIR environment variables
    are set (``make test-fast`` runs the suite through the process
    pool this way)."""
    return executor_from_env(ExperimentRunner(machine))
