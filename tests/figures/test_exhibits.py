"""Figure-generator shape tests: every exhibit must show the paper's
qualitative result (orderings, crossovers, saturation, missing bars)."""

import pytest

from repro.figures import EXHIBITS
from repro.figures.fig2 import generate as fig2
from repro.figures.fig3 import generate as fig3
from repro.figures.fig4 import (
    generate_a as fig4a,
    generate_b as fig4b,
    generate_c as fig4c,
    generate_d as fig4d,
    generate_e as fig4e,
)
from repro.figures.fig5 import generate as fig5
from repro.figures.fig6 import (
    generate_a as fig6a,
    generate_b as fig6b,
    generate_c as fig6c,
    generate_d as fig6d,
)
from repro.figures.table1 import generate as table1
from repro.figures.table2 import generate as table2


class TestTables:
    def test_table1(self):
        ex = table1()
        assert len(ex.data["rows"]) == 5
        assert "XSBench" in ex.text

    def test_table2(self):
        ex = table2()
        assert ex.data["flat_distances"] == [[10, 31], [31, 10]]
        assert ex.data["flat_capacities_gb"] == [96, 16]
        assert ex.data["cache_distances"] == [[10]]


class TestFig2:
    @pytest.fixture(scope="class")
    def ex(self, runner):
        return fig2(runner)

    def test_dram_flat_77(self, ex):
        dram = [v for v in ex.data["DRAM"] if v is not None]
        assert all(abs(v - 77.0) < 1.5 for v in dram)

    def test_hbm_330_and_stops_at_capacity(self, ex):
        sizes = ex.data["sizes_gb"]
        hbm = ex.data["HBM"]
        for size, value in zip(sizes, hbm):
            if size <= 16:
                assert value == pytest.approx(330.0, rel=0.01)
            if size > 17.2:  # 16 GiB = 17.18 GB
                assert value is None

    def test_cache_anchor_points(self, ex):
        sizes = ex.data["sizes_gb"]
        cache = dict(zip(sizes, ex.data["Cache Mode"]))
        assert cache[8] == pytest.approx(260, rel=0.03)
        assert cache[11.4] == pytest.approx(125, rel=0.03)
        assert cache[24] < 77.0
        assert cache[40] < 77.0

    def test_cache_monotone_decreasing(self, ex):
        cache = ex.data["Cache Mode"]
        for earlier, later in zip(cache, cache[1:]):
            assert later <= earlier + 0.5


class TestFig3:
    @pytest.fixture(scope="class")
    def ex(self):
        return fig3()

    def test_l2_tier(self, ex):
        for block, lat in zip(ex.data["blocks"], ex.data["dram_ns"]):
            if block <= 1 << 20:
                assert lat == pytest.approx(10.0, abs=1.0)

    def test_mid_tier(self, ex):
        for block, lat in zip(ex.data["blocks"], ex.data["dram_ns"]):
            if 4 * (1 << 20) <= block <= 64 * (1 << 20):
                assert 140 <= lat <= 260

    def test_growth_tier(self, ex):
        by_block = dict(zip(ex.data["blocks"], ex.data["dram_ns"]))
        assert by_block[1 << 30] > by_block[64 << 20] + 150

    def test_gap_band(self, ex):
        gaps = [
            g
            for b, g in zip(ex.data["blocks"], ex.data["gap_percent"])
            if b > 1 << 20
        ]
        assert all(10.0 <= g <= 23.0 for g in gaps)

    def test_gap_peaks_early(self, ex):
        gaps = dict(zip(ex.data["blocks"], ex.data["gap_percent"]))
        assert gaps[2 << 20] == max(
            g for b, g in gaps.items() if b > 1 << 20
        )


def _series(ex, name):
    return {
        s: v for s, v in zip(ex.data["sizes_gb"], ex.data[name])
    }


class TestFig4SequentialPanels:
    def test_dgemm_hbm_about_2x(self, runner):
        ex = fig4a(runner)
        imp = [v for v in ex.data["hbm_improvement"] if v is not None]
        assert all(1.8 <= v <= 2.3 for v in imp)

    def test_dgemm_hbm_missing_at_24gb(self, runner):
        ex = fig4a(runner)
        assert _series(ex, "HBM")[24.0] is None

    def test_minife_hbm_about_3x(self, runner):
        ex = fig4b(runner)
        imp = [v for v in ex.data["hbm_improvement"] if v is not None]
        assert all(2.6 <= v <= 3.5 for v in imp)

    def test_minife_cache_improvement_collapses_at_28_8(self, runner):
        ex = fig4b(runner)
        cache_imp = dict(zip(ex.data["sizes_gb"], ex.data["cache_improvement"]))
        assert cache_imp[3.6] > 2.3
        assert 0.9 <= cache_imp[28.8] <= 1.25

    def test_hbm_always_best_when_present(self, runner):
        for gen in (fig4a, fig4b):
            ex = gen(runner)
            for size in ex.data["sizes_gb"]:
                hbm = _series(ex, "HBM")[size]
                if hbm is None:
                    continue
                assert hbm >= _series(ex, "DRAM")[size]
                assert hbm >= _series(ex, "Cache Mode")[size]


class TestFig4RandomPanels:
    @pytest.mark.parametrize("gen", [fig4c, fig4d, fig4e])
    def test_dram_best_everywhere(self, runner, gen):
        ex = gen(runner)
        for size in ex.data["sizes_gb"]:
            dram = _series(ex, "DRAM")[size]
            for other in ("HBM", "Cache Mode"):
                value = _series(ex, other)[size]
                if value is not None:
                    assert dram >= value

    def test_gups_band_is_narrow(self, runner):
        ex = fig4c(runner)
        dram = [v for v in ex.data["DRAM"] if v is not None]
        assert max(dram) / min(dram) < 1.3
        assert 0.8e-2 <= min(dram) and max(dram) <= 1.3e-2

    def test_graph500_dram_vs_cache_grows_to_1_3(self, runner):
        ex = fig4d(runner)
        sizes = ex.data["sizes_gb"]
        ratio_small = _series(ex, "DRAM")[sizes[0]] / _series(ex, "Cache Mode")[sizes[0]]
        ratio_large = _series(ex, "DRAM")[35.0] / _series(ex, "Cache Mode")[35.0]
        assert ratio_large > ratio_small
        assert ratio_large == pytest.approx(1.3, rel=0.15)

    def test_xsbench_declines_with_size(self, runner):
        ex = fig4e(runner)
        dram = [v for v in ex.data["DRAM"] if v is not None]
        assert dram[0] > dram[-1]
        assert 2e6 <= dram[0] <= 3.5e6


class TestFig5:
    @pytest.fixture(scope="class")
    def ex(self, runner):
        return fig5(runner)

    def test_hbm_smt_gain_127(self, ex):
        one = ex.data["HBM (ht=1)"]
        two = ex.data["HBM (ht=2)"]
        for a, b in zip(one, two):
            assert b / a == pytest.approx(1.27, rel=0.01)

    def test_hbm_ht2_to_4_cluster(self, ex):
        for i in range(len(ex.data["sizes_gb"])):
            values = [ex.data[f"HBM (ht={h})"][i] for h in (2, 3, 4)]
            assert max(values) / min(values) < 1.02

    def test_dram_lines_overlap(self, ex):
        for i in range(len(ex.data["sizes_gb"])):
            values = [ex.data[f"DRAM (ht={h})"][i] for h in (1, 2, 3, 4)]
            assert max(values) / min(values) < 1.05
            assert values[0] == pytest.approx(77.0, rel=0.01)


class TestFig6:
    def test_dgemm_17x_at_192_and_fails_at_256(self, runner):
        ex = fig6a(runner)
        speedup = ex.data["speedup_vs_64"]["HBM"]
        by_threads = dict(zip(ex.data["threads"], speedup))
        assert by_threads[192] == pytest.approx(1.7, rel=0.05)
        assert by_threads[256] is None
        assert dict(zip(ex.data["threads"], ex.data["DRAM"]))[256] is None

    def test_minife_hbm_vs_dram64_approaches_3_8(self, runner):
        ex = fig6b(runner)
        dram64 = dict(zip(ex.data["threads"], ex.data["DRAM"]))[64]
        hbm = dict(zip(ex.data["threads"], ex.data["HBM"]))
        best = max(v for v in hbm.values() if v is not None)
        assert best / dram64 == pytest.approx(3.8, rel=0.15)

    def test_minife_dram_flat(self, runner):
        ex = fig6b(runner)
        speedup = [
            v for v in ex.data["speedup_vs_64"]["DRAM"] if v is not None
        ]
        assert all(0.9 <= v <= 1.1 for v in speedup)

    def test_graph500_peaks_at_128_on_dram(self, runner):
        ex = fig6c(runner)
        speedup = dict(
            zip(ex.data["threads"], ex.data["speedup_vs_64"]["DRAM"])
        )
        assert speedup[128] == pytest.approx(1.5, rel=0.1)
        assert speedup[128] > speedup[192] > speedup[256]

    def test_graph500_dram_remains_best(self, runner):
        """Paper: 'DRAM still remains the best configuration, as it shows
        the highest performance when using 128 threads' — the global
        optimum across all (config, threads) points is DRAM at 128."""
        ex = fig6c(runner)
        best_value = -1.0
        best = None
        for name in ("DRAM", "HBM", "Cache Mode"):
            for t, v in zip(ex.data["threads"], ex.data[name]):
                if v is not None and v > best_value:
                    best_value, best = v, (name, t)
        assert best == ("DRAM", 128)

    def test_xsbench_gains(self, runner):
        ex = fig6d(runner)
        speedup = ex.data["speedup_vs_64"]
        hbm = dict(zip(ex.data["threads"], speedup["HBM"]))
        dram = dict(zip(ex.data["threads"], speedup["DRAM"]))
        assert hbm[256] == pytest.approx(2.5, rel=0.1)
        assert dram[256] == pytest.approx(1.5, rel=0.1)

    def test_xsbench_crossover(self, runner):
        """Fig. 6d: DRAM best at 64 threads, HBM best at 256."""
        ex = fig6d(runner)
        at = lambda name, t: dict(zip(ex.data["threads"], ex.data[name]))[t]
        assert at("DRAM", 64) > at("HBM", 64)
        assert at("HBM", 256) > at("DRAM", 256)


class TestExhibitRegistry:
    def test_all_exhibits_registered(self):
        # The paper's 15 exhibits plus the cross-machine zoo.
        assert len(EXHIBITS) == 16
        assert "machines" in EXHIBITS

    def test_render_includes_expectation(self, runner):
        ex = fig5(runner)
        text = ex.render()
        assert "[paper]" in text
        assert ex.exhibit_id in text


class TestFig1:
    def test_layout_structure(self):
        from repro.figures.fig1 import generate as fig1

        ex = fig1()
        assert ex.data["tiles"] == 32
        assert ex.data["cores"] == 64
        assert ex.data["mcdram_gb"] == 16
        assert ex.data["ddr_gb"] == 96
        assert ex.data["ddr_channels"] == 6
        assert ex.text.count("[L2 1MB]") == 32
        assert "MCDRAM" in ex.text and "DDR4" in ex.text


class TestPanelAxes:
    def test_fig4_panel_sizes_match_paper_axes(self):
        from repro.figures.fig4 import PANELS

        assert PANELS["fig4a"].sizes_gb == (0.1, 0.4, 1.5, 6.0, 24.0)
        assert PANELS["fig4b"].sizes_gb == (0.1, 0.9, 1.8, 3.6, 7.2, 14.4, 28.8)
        assert PANELS["fig4c"].sizes_gb == (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
        assert PANELS["fig4d"].sizes_gb == (1.1, 2.2, 4.4, 8.8, 17.5, 35.0)
        assert PANELS["fig4e"].sizes_gb == (5.6, 11.3, 22.5, 45.0, 90.0)

    def test_fig6_thread_axis(self):
        from repro.figures.fig6 import DEFAULT_THREADS

        assert DEFAULT_THREADS == (64, 128, 192, 256)
