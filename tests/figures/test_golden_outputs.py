"""Golden-figure regression suite.

Renders every exhibit and diffs it against the checked-in
``benchmarks/output/<id>.txt`` dumps (modulo trailing whitespace), so a
performance refactor — parallel execution, caching, engine rework —
cannot silently change the numbers the reproduction reports for the
paper.  Regenerate the goldens with ``pytest benchmarks/`` after an
*intentional* model change.
"""

import pathlib

import pytest

from repro.figures import EXHIBITS

GOLDEN_DIR = pathlib.Path(__file__).parent.parent.parent / "benchmarks" / "output"


def _normalize(text: str) -> str:
    """Trailing whitespace (per line and at EOF) is not part of the contract."""
    return "\n".join(line.rstrip() for line in text.splitlines()).rstrip() + "\n"


@pytest.fixture(scope="module")
def rendered(runner):
    """Render every exhibit once through the shared runner/executor."""
    out = {}
    for exhibit_id, generate in EXHIBITS.items():
        try:
            out[exhibit_id] = generate(runner)  # type: ignore[call-arg]
        except TypeError:
            out[exhibit_id] = generate()  # table generators take no runner
    return out


@pytest.mark.parametrize("exhibit_id", sorted(EXHIBITS))
def test_exhibit_matches_golden(rendered, exhibit_id):
    golden_path = GOLDEN_DIR / f"{exhibit_id}.txt"
    assert golden_path.exists(), (
        f"missing golden {golden_path}; run `pytest benchmarks/` to create it"
    )
    golden = _normalize(golden_path.read_text())
    actual = _normalize(rendered[exhibit_id].render())
    assert actual == golden, (
        f"{exhibit_id} drifted from its golden output; if the model change "
        f"is intentional, regenerate with `pytest benchmarks/`"
    )


def test_every_exhibit_has_a_golden():
    missing = [e for e in EXHIBITS if not (GOLDEN_DIR / f"{e}.txt").exists()]
    assert not missing


def test_parallel_executor_matches_goldens(machine):
    """The acceptance check: fig2 and fig6a through the thread-pool
    executor are byte-identical to the checked-in serial outputs."""
    from repro.core.executor import SweepExecutor
    from repro.core.runner import ExperimentRunner
    from repro.figures.fig2 import generate as fig2
    from repro.figures.fig6 import generate_a as fig6a

    with SweepExecutor(ExperimentRunner(machine), jobs=4) as executor:
        for exhibit_id, generate in (("fig2", fig2), ("fig6a", fig6a)):
            golden = (GOLDEN_DIR / f"{exhibit_id}.txt").read_text()
            assert generate(executor).render() + "\n" == golden
        assert executor.stats().executed > 0
