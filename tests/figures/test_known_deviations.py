"""Pin the documented deviations from the paper (EXPERIMENTS.md).

The golden suite asserts the exhibits don't drift; this suite asserts
the four *known deviations* collected in EXPERIMENTS.md stay exactly as
documented — each gets a numeric band.  If a model improvement moves a
number back toward the paper, the test failing here is the prompt to
update both the band and the EXPERIMENTS.md entry; if a regression
widens a deviation, the band catches it before the golden diff has to.

1. Fig. 3 gap tail: 13.9 % at 1 GB vs the paper's 15 % floor.
2. Fig. 4c spread: HBM/cache gaps of 1-28 % vs the paper's few percent.
3. Fig. 6b peak ratio: HBM@256 / DRAM@64 = 4.2x vs the paper's 3.8x.
4. Fig. 6c: HBM/cache peak at 192 threads (paper: everything at 128);
   DRAM and the global optimum peak at 128 as reported.
"""

from __future__ import annotations

import pytest

from repro.figures import EXHIBITS


def _generate(exhibit_id):
    generate = EXHIBITS[exhibit_id]
    try:
        return generate(None)
    except TypeError:
        return generate()


@pytest.fixture(scope="module")
def fig3():
    return _generate("fig3").data


@pytest.fixture(scope="module")
def fig4c():
    return _generate("fig4c").data


@pytest.fixture(scope="module")
def fig6b():
    return _generate("fig6b").data


@pytest.fixture(scope="module")
def fig6c():
    return _generate("fig6c").data


# -- deviation 1: Fig. 3 gap tail ---------------------------------------------


def test_fig3_gap_peaks_just_past_l2_then_decays(fig3):
    gaps = fig3["gap_percent"]
    # L2-resident blocks: both devices at the same ~10 ns tier, no gap.
    assert all(abs(g) < 0.5 for g in gaps[:4])
    # Peak just above 1 MB: ~21 %, at the top of the paper's 15-20 % band.
    peak = max(gaps)
    assert gaps[4] == peak
    assert 20.0 <= peak <= 22.0


def test_fig3_gap_tail_dips_below_the_paper_floor(fig3):
    gaps = fig3["gap_percent"]
    tail = gaps[-3:]  # 256 MB, 512 MB, 1 GB
    # The documented deviation: the tail sits at 13-14 %, under the
    # paper's 15 % floor.  It must stay a *slight* dip — never a collapse
    # (>= 12 %) and never silently recovered (< 15 %).
    assert all(12.0 <= g < 15.0 for g in tail), tail
    # Beyond the peak every DRAM-resident gap stays inside 12-21 %.
    assert all(12.0 <= g <= 21.5 for g in gaps[4:])


# -- deviation 2: Fig. 4c spread ----------------------------------------------


def test_fig4c_configuration_gaps_exceed_the_papers_few_percent(fig4c):
    hbm = [v for v in fig4c["hbm_improvement"] if v is not None]
    cache = [v for v in fig4c["cache_improvement"] if v is not None]
    # Ordering is the paper's: DRAM marginally best for GUPS at 64
    # threads, cache mode worst.
    assert all(v < 1.0 for v in hbm)
    assert all(v < 1.0 for v in cache)
    assert min(cache) <= min(hbm)
    # The documented deviation: gaps of 1-28 % (the paper's band is ~4 %
    # wide).  Bands bracket the current values 0.86-0.99x and 0.72-0.79x.
    assert 0.85 <= min(hbm) and max(hbm) <= 0.995
    assert 0.70 <= min(cache) and max(cache) <= 0.80


def test_fig4c_dram_band_stays_flat(fig4c):
    dram = [v for v in fig4c["DRAM"] if v is not None]
    assert (max(dram) - min(dram)) / max(dram) < 0.06


# -- deviation 3: Fig. 6b peak ratio ------------------------------------------


def test_fig6b_peak_ratio_runs_high_of_the_paper(fig6b):
    hbm = fig6b["HBM"]
    dram = fig6b["DRAM"]
    threads = fig6b["threads"]
    ratio = hbm[threads.index(256)] / dram[threads.index(64)]
    # Paper: 3.8x.  Documented deviation: ~4.2x (about 11 % high).  A
    # drop below 3.8 or a climb past 4.6 is new behaviour, not this one.
    assert 3.8 <= ratio <= 4.6, ratio


def test_fig6b_dram_stays_flat_while_hbm_scales(fig6b):
    speedups = fig6b["speedup_vs_64"]
    assert all(0.95 <= v <= 1.10 for v in speedups["DRAM"])
    assert max(speedups["HBM"]) >= 1.4


# -- deviation 4: Fig. 6c peak placement --------------------------------------


def test_fig6c_dram_and_global_optimum_peak_at_128(fig6c):
    threads = fig6c["threads"]
    dram = fig6c["DRAM"]
    assert threads[dram.index(max(dram))] == 128
    best = max(max(v for v in fig6c[k] if v is not None)
               for k in ("DRAM", "HBM", "Cache Mode"))
    assert best == max(dram)


def test_fig6c_hbm_and_cache_peak_late_at_192(fig6c):
    threads = fig6c["threads"]
    for key in ("HBM", "Cache Mode"):
        series = fig6c[key]
        assert threads[series.index(max(series))] == 192, (
            f"{key} no longer peaks at 192 threads — the documented "
            "deviation from the paper's 128-thread optimum has moved; "
            "update EXPERIMENTS.md and this band together"
        )
