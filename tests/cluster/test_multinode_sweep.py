"""Multi-node decomposition driven through a SweepExecutor.

:class:`~repro.cluster.multinode.MultiNodeModel` takes any runner-shaped
object, so the executor's memoized run cache (and, with ``check=``, the
invariant checker) slots straight under a node-count sweep — the same
composition ``knl-hybridmem decompose`` uses.  This covers the cluster
layer end-to-end: decomposition, per-node advisor choice, Aries
communication time, and cache reuse across repeated decompositions.
"""

from __future__ import annotations

import pytest

from repro.cluster.multinode import MultiNodeModel
from repro.core.configs import ConfigName
from repro.core.executor import SweepExecutor
from repro.core.runner import ExperimentRunner
from repro.workloads.registry import FROM_GB

TOTAL_GB = 96.0
NODE_COUNTS = [2, 4, 8, 16]


@pytest.fixture(scope="module")
def executor():
    with SweepExecutor(ExperimentRunner(), check="raise") as ex:
        yield ex


@pytest.fixture(scope="module")
def sweep(executor):
    model = MultiNodeModel(executor)
    return {
        nodes: model.run(FROM_GB["minife"], TOTAL_GB, nodes)
        for nodes in NODE_COUNTS
    }


def test_decomposition_accounting(sweep):
    for nodes, result in sweep.items():
        assert result.nodes == nodes
        assert result.per_node_gb == pytest.approx(TOTAL_GB / nodes)
        assert result.aggregate_metric == pytest.approx(
            nodes * result.per_node_metric
        )
        assert result.total_s == pytest.approx(
            result.compute_s + result.communication_s
        )
        assert 0.0 < result.parallel_efficiency <= 1.0


def test_small_subproblems_move_to_hbm(sweep):
    # 48 GB/node only fits DRAM; by 8 nodes (12 GB) the advisor should
    # have switched the sub-problem into the flat HBM node.
    assert sweep[2].config is ConfigName.DRAM
    assert sweep[8].config is ConfigName.HBM
    assert sweep[16].config is ConfigName.HBM


def test_aggregate_throughput_grows_with_nodes(sweep):
    aggregates = [sweep[n].aggregate_metric for n in NODE_COUNTS]
    assert all(b > a for a, b in zip(aggregates, aggregates[1:]))


def test_communication_model_engages_for_minife(sweep):
    # MiniFE has a wired communication profile (halo exchange + allreduce):
    # every decomposition pays a positive, sub-dominant wire time.
    for result in sweep.values():
        assert result.communication_s > 0
        assert result.communication_s < result.compute_s


def test_every_cell_was_audited(executor, sweep):
    checking = executor.checking
    assert checking is not None
    assert checking.runs_checked > 0
    assert checking.violation_count == 0


def test_repeated_decomposition_hits_the_run_cache(executor, sweep):
    before = executor.stats()
    model = MultiNodeModel(executor)
    again = model.run(FROM_GB["minife"], TOTAL_GB, 8)
    after = executor.stats()
    assert again.aggregate_metric == pytest.approx(
        sweep[8].aggregate_metric
    )
    assert after.executed == before.executed  # nothing re-ran
    assert after.hits > before.hits
