"""Aries interconnect model tests."""

import pytest

from repro.cluster.interconnect import AriesInterconnect


@pytest.fixture()
def net():
    return AriesInterconnect()


class TestPointToPoint:
    def test_latency_floor(self, net):
        assert net.point_to_point_s(0) == pytest.approx(1.3e-6)

    def test_bandwidth_term(self, net):
        t = net.point_to_point_s(10e9)
        assert t == pytest.approx(1.0 + 1.3e-6, rel=1e-6)

    def test_negative_rejected(self, net):
        with pytest.raises(ValueError):
            net.point_to_point_s(-1)


class TestCollectives:
    def test_allreduce_single_node_free(self, net):
        assert net.allreduce_s(8.0, 1) == 0.0

    def test_allreduce_log_rounds(self, net):
        t2 = net.allreduce_s(8.0, 2)
        t8 = net.allreduce_s(8.0, 8)
        assert t8 == pytest.approx(3 * t2)

    def test_halo_three_phases(self, net):
        t = net.halo_exchange_s(1e6, faces=6)
        assert t == pytest.approx(3 * net.point_to_point_s(1e6))

    def test_alltoall_scales(self, net):
        t2 = net.alltoall_s(1e6, 2)
        t4 = net.alltoall_s(1e6, 4)
        assert t4 > t2

    def test_alltoall_single_node_free(self, net):
        assert net.alltoall_s(1e6, 1) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AriesInterconnect(alpha_s=0.0)
