"""Multi-node composition tests (Section IV-C made quantitative)."""

import pytest

from repro.cluster.interconnect import AriesInterconnect
from repro.cluster.multinode import (
    MultiNodeModel,
    graph500_communication,
    minife_communication,
)
from repro.core.configs import ConfigName
from repro.workloads.graph500 import Graph500
from repro.workloads.minife import MiniFE


@pytest.fixture(scope="module")
def model(runner):
    return MultiNodeModel(runner)


class TestCommunicationProfiles:
    def test_minife_single_node_silent(self):
        prof = minife_communication(MiniFE.from_matrix_gb(8.0), 1)
        assert prof.steps == ()

    def test_minife_steps(self):
        w = MiniFE.from_matrix_gb(8.0)
        prof = minife_communication(w, 8)
        kinds = {s.op.value for s in prof.steps}
        assert kinds == {"halo", "allreduce"}
        allreduce = next(s for s in prof.steps if s.op.value == "allreduce")
        assert allreduce.count == 2 * w.cg_iterations

    def test_graph500_alltoall(self):
        prof = graph500_communication(Graph500(scale=24), 8)
        assert len(prof.steps) == 1
        assert prof.steps[0].op.value == "alltoall"

    def test_time_positive(self):
        net = AriesInterconnect()
        prof = minife_communication(MiniFE.from_matrix_gb(8.0), 8)
        assert prof.time_s(net, 8) > 0


class TestMultiNodeModel:
    def test_hbm_knee_in_aggregate(self, model):
        """Per the paper: aggregate throughput jumps when sub-problems
        start fitting HBM."""
        four = model.run(MiniFE.from_matrix_gb, 96.0, 4)
        eight = model.run(MiniFE.from_matrix_gb, 96.0, 8)
        assert four.config is not ConfigName.HBM
        assert eight.config is ConfigName.HBM
        assert eight.aggregate_metric / four.aggregate_metric > 3.0

    def test_efficiency_below_one_with_comm(self, model):
        result = model.run(Graph500.from_graph_gb, 70.0, 8)
        assert 0.5 < result.parallel_efficiency < 1.0
        assert result.communication_s > 0

    def test_explicit_config(self, model):
        result = model.run(MiniFE.from_matrix_gb, 32.0, 4, config=ConfigName.HBM)
        assert result.config is ConfigName.HBM

    def test_explicit_infeasible_config_raises(self, model):
        with pytest.raises(RuntimeError, match="infeasible"):
            model.run(MiniFE.from_matrix_gb, 96.0, 2, config=ConfigName.HBM)

    def test_aggregate_is_nodes_times_per_node(self, model):
        result = model.run(MiniFE.from_matrix_gb, 64.0, 8)
        assert result.aggregate_metric == pytest.approx(
            8 * result.per_node_metric
        )

    def test_total_time_composition(self, model):
        result = model.run(Graph500.from_graph_gb, 70.0, 4)
        assert result.total_s == pytest.approx(
            result.compute_s + result.communication_s
        )

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.run(MiniFE.from_matrix_gb, 0.0, 4)
        with pytest.raises(ValueError):
            model.run(MiniFE.from_matrix_gb, 32.0, 0)
