"""Checking on ⇒ every exhibit byte-identical to its golden output.

The checker's core promise mirrors the observability layer's
(``tests/obs/test_golden_identity.py``): auditing a run must never
perturb it.  One :func:`~repro.checks.batch.check_exhibits` pass — the
same code path as ``make check`` — regenerates all 15 exhibits under
full invariant checking; the rendered text is diffed against the
``benchmarks/output`` goldens and the pass itself must report zero
violations.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.checks.batch import check_exhibits
from repro.figures import EXHIBITS

GOLDEN_DIR = pathlib.Path(__file__).parent.parent.parent / "benchmarks" / "output"


def _normalize(text: str) -> str:
    return "\n".join(line.rstrip() for line in text.splitlines()).rstrip() + "\n"


@pytest.fixture(scope="module")
def batch():
    """One full checked batch, shared across the parametrized diffs."""
    report = check_exhibits()
    return report


def test_batch_is_clean(batch):
    assert batch.ok, batch.render()
    assert batch.total_violations == 0
    assert len(batch.checks) == len(EXHIBITS)


def test_every_exhibit_was_audited(batch):
    for check in batch.checks:
        assert check.evaluated >= 1, (
            f"{check.exhibit_id} passed through the batch without a single "
            "invariant evaluation"
        )


@pytest.mark.parametrize("exhibit_id", sorted(EXHIBITS))
def test_checked_exhibit_identical_to_golden(batch, exhibit_id):
    golden = _normalize((GOLDEN_DIR / f"{exhibit_id}.txt").read_text())
    by_id = {check.exhibit_id: check for check in batch.checks}
    actual = _normalize(by_id[exhibit_id].rendered)
    assert actual == golden, (
        f"{exhibit_id} drifted when regenerated under invariant checking — "
        "auditing must never change model output"
    )
