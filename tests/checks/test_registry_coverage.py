"""Every registered invariant is exercised at least once.

An invariant that is never applicable anywhere is dead weight — or,
worse, a typo'd condition silently skipping the law it was written for.
This module drives a small battery (two size sweeps, a thread sweep and
the latency exhibit) through a collecting checker and asserts the union
of evaluated invariant names equals the full registry, so adding an
invariant without a subject that triggers it fails the suite.
"""

from __future__ import annotations

import pytest

from repro.checks.checker import CheckingRunner, check_exhibit
from repro.checks.invariants import REGISTRY, Scope
from repro.core.executor import SweepExecutor
from repro.core.sweep import size_sweep, thread_sweep
from repro.figures import EXHIBITS
from repro.workloads.registry import FROM_GB


@pytest.fixture(scope="module")
def battery():
    """One collecting checker driven across all three scopes."""
    violations = []
    runner = CheckingRunner(collect=violations)
    with SweepExecutor(runner) as executor:
        # Sequential workload across the capacity boundary: streaming
        # ordering, byte conservation, cache accounting, capacity laws.
        size_sweep(executor, FROM_GB["minife"], [4.0, 34.0], num_threads=64)
        # Random workload: TLB accounting and the DRAM preference.
        size_sweep(executor, FROM_GB["gups"], [1.0, 20.0], num_threads=64)
        # Thread axis: unimodal scaling.
        thread_sweep(executor, FROM_GB["gups"](1.0), [64, 128, 256])
    # Exhibit scope: the latency figure carries both exhibit invariants.
    generate = EXHIBITS["fig3"]
    try:
        exhibit = generate(executor)
    except TypeError:
        exhibit = generate()
    runner.handle_report(check_exhibit(exhibit))
    return runner, violations


def test_battery_is_clean(battery):
    runner, violations = battery
    assert not violations, [v.describe() for v in violations]
    assert runner.runs_checked > 0


def test_every_invariant_evaluated_at_least_once(battery):
    runner, _ = battery
    missing = set(REGISTRY) - runner.evaluated_names
    assert not missing, (
        f"invariants never exercised by the battery: {sorted(missing)} — "
        "either extend the battery or the invariant's applicability is broken"
    )


def test_battery_does_not_evaluate_unregistered_names(battery):
    runner, _ = battery
    assert runner.evaluated_names <= set(REGISTRY)


def test_registry_scope_counts_match_catalogue():
    # docs/TESTING.md documents the registry; keep the shape pinned so the
    # catalogue cannot silently drift from the code.
    by_scope = {scope: 0 for scope in Scope}
    for inv in REGISTRY.values():
        by_scope[inv.scope] += 1
    assert by_scope[Scope.RUN] >= 5
    assert by_scope[Scope.SWEEP] >= 3
    assert by_scope[Scope.EXHIBIT] >= 2
    assert len(REGISTRY) >= 11
