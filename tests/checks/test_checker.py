"""The runtime checker: modes, the runner wrapper, executor integration.

The central promises under test: a clean model run trips nothing in any
mode; a violation follows the configured policy (raise / warn / collect)
exactly; checking composes with the observability layer instead of
fighting it; and the executor's run cache never hands an *unchecked*
record to a *checked* session (the check mode is part of the cache key).
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.checks.checker import (
    CheckingRunner,
    CheckMode,
    InvariantViolation,
    check_mode_from_env,
)
from repro.checks.invariants import Scope, Violation, invariant, unregister
from repro.core.configs import ConfigName, make_config
from repro.core.executor import SweepCell, SweepExecutor, executor_from_env
from repro.core.runner import ExperimentRunner
from repro.workloads.registry import FROM_GB


# -- mode parsing -------------------------------------------------------------


def test_check_mode_parse():
    assert CheckMode.parse("warn") is CheckMode.WARN
    assert CheckMode.parse("RAISE") is CheckMode.RAISE
    assert CheckMode.parse(CheckMode.WARN) is CheckMode.WARN
    with pytest.raises(ValueError, match="unknown check mode"):
        CheckMode.parse("loud")


@pytest.mark.parametrize(
    "raw, expected",
    [
        (None, None),
        ("", None),
        ("0", None),
        ("off", None),
        ("warn", "warn"),
        ("raise", "raise"),
        ("1", "raise"),
        ("yes", "raise"),
    ],
)
def test_check_mode_from_env(raw, expected):
    env = {} if raw is None else {"REPRO_CHECK": raw}
    assert check_mode_from_env(env) == expected


# -- clean paper runs ---------------------------------------------------------


def test_paper_trio_runs_clean_for_every_workload():
    runner = CheckingRunner(mode="raise")
    for name in sorted(FROM_GB):
        records = runner.run_configs(FROM_GB[name](1.0))
        assert len(records) == 3
    assert runner.runs_checked == 3 * len(FROM_GB)
    assert runner.violation_count == 0
    assert runner.invariants_evaluated > 0


def test_checking_runner_returns_the_same_record():
    workload = FROM_GB["minife"](1.0)
    plain = ExperimentRunner().run(workload, ConfigName.HBM, 64)
    checked = CheckingRunner(mode="raise").run(workload, ConfigName.HBM, 64)
    assert checked.metric == plain.metric
    assert checked.config is plain.config


# -- violation policies -------------------------------------------------------


@pytest.fixture()
def failing_invariant():
    """Temporarily register a run-scope invariant that always fires."""
    name = "always-fails-for-test"

    @invariant(
        name,
        scope=Scope.RUN,
        description="unconditional failure for policy tests",
        paper_ref="tests only",
    )
    def _always_fails(ctx):
        return [Violation(name, ctx.subject(), "deliberate")]

    yield name
    unregister(name)


def test_raise_mode_throws_with_violation_details(failing_invariant):
    runner = CheckingRunner(mode="raise")
    with pytest.raises(InvariantViolation) as excinfo:
        runner.run(FROM_GB["gups"](1.0), ConfigName.DRAM, 64)
    assert failing_invariant in str(excinfo.value)
    assert any(
        v.invariant == failing_invariant for v in excinfo.value.violations
    )


def test_warn_mode_prints_to_stderr_and_continues(failing_invariant, capsys):
    runner = CheckingRunner(mode="warn")
    record = runner.run(FROM_GB["gups"](1.0), ConfigName.DRAM, 64)
    assert record.metric is not None  # the run itself survived
    err = capsys.readouterr().err
    assert f"[check] [{failing_invariant}]" in err
    assert runner.violation_count == 1


def test_collect_mode_accumulates_without_raising(failing_invariant):
    collected = []
    runner = CheckingRunner(collect=collected)
    runner.run(FROM_GB["gups"](1.0), ConfigName.DRAM, 64)
    runner.run(FROM_GB["gups"](1.0), ConfigName.HBM, 64)
    assert [v.invariant for v in collected] == [failing_invariant] * 2
    assert runner.runs_checked == 2


# -- observability composition ------------------------------------------------


def test_checks_emit_counters_into_an_active_session():
    with obs.observe() as session:
        CheckingRunner(mode="raise").run(FROM_GB["gups"](1.0), ConfigName.CACHE, 64)
    assert session.metrics.counter_value("checks.evaluated") > 0
    assert session.metrics.counter_value("checks.violations") == 0
    # The model's own stream was captured by the same session.
    assert session.metrics.counter_value("model.runs") > 0


def test_checking_works_without_a_session():
    # No observation session installed: the window installs (and removes)
    # a private registry; nothing leaks into a later session.
    CheckingRunner(mode="raise").run(FROM_GB["gups"](1.0), ConfigName.CACHE, 64)
    with obs.observe() as session:
        pass
    assert session.metrics.counter_value("checks.evaluated") == 0


# -- executor integration -----------------------------------------------------


def test_executor_check_flag_wraps_runner():
    executor = SweepExecutor(ExperimentRunner(), check="raise")
    assert isinstance(executor.checking, CheckingRunner)
    assert executor.checking.mode is CheckMode.RAISE
    record = executor.run(FROM_GB["gups"](1.0), ConfigName.DRAM, 64)
    assert record.metric is not None
    assert executor.checking.runs_checked == 1


def test_executor_does_not_double_wrap_a_checking_runner():
    runner = CheckingRunner(mode="warn")
    executor = SweepExecutor(runner, check="raise")
    assert executor.checking is runner


def test_unchecked_executor_has_no_checking():
    assert SweepExecutor(ExperimentRunner()).checking is None


def test_check_mode_is_part_of_the_cache_key():
    cell = SweepCell(FROM_GB["gups"](1.0), make_config(ConfigName.DRAM), 64)
    plain = SweepExecutor(ExperimentRunner())
    raising = SweepExecutor(ExperimentRunner(), check="raise")
    warning = SweepExecutor(ExperimentRunner(), check="warn")
    keys = {
        plain.cache_key(cell),
        raising.cache_key(cell),
        warning.cache_key(cell),
    }
    assert len(keys) == 3


def test_checked_session_never_reuses_unchecked_disk_cache(tmp_path):
    workload = FROM_GB["gups"](1.0)
    with SweepExecutor(ExperimentRunner(), cache_dir=tmp_path) as unchecked:
        unchecked.run(workload, ConfigName.DRAM, 64)
        assert unchecked.stats().executed == 1
    # Same disk cache, unchecked again: served from disk.
    with SweepExecutor(ExperimentRunner(), cache_dir=tmp_path) as again:
        again.run(workload, ConfigName.DRAM, 64)
        assert again.stats().executed == 0
    # Same disk cache, checking on: the unchecked record must not satisfy
    # the lookup — the cell re-executes under audit.
    with SweepExecutor(
        ExperimentRunner(), cache_dir=tmp_path, check="raise"
    ) as checked:
        checked.run(workload, ConfigName.DRAM, 64)
        assert checked.stats().executed == 1
        assert checked.checking.runs_checked == 1
    # And the checked record now persists under its own key.
    with SweepExecutor(
        ExperimentRunner(), cache_dir=tmp_path, check="raise"
    ) as warm:
        warm.run(workload, ConfigName.DRAM, 64)
        assert warm.stats().executed == 0


def test_executor_from_env_reads_repro_check():
    executor = executor_from_env(
        ExperimentRunner(), {"REPRO_CHECK": "warn"}
    )
    assert isinstance(executor, SweepExecutor)
    assert executor.checking is not None
    assert executor.checking.mode is CheckMode.WARN
    plain = executor_from_env(ExperimentRunner(), {})
    assert isinstance(plain, ExperimentRunner)
