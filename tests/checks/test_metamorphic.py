"""Metamorphic properties: perturb the model, predict the direction.

Instead of pinning absolute numbers, each property states how an output
must *move* when an input is transformed — double a footprint and cache
hit rates cannot rise; derate the MCDRAM device and streaming cannot get
faster; swap the two devices and the HBM/DRAM ordering must flip; grow a
bind past its node and the run must become infeasible.  Hypothesis
drives the transformations under the pinned ``repro`` profile
(derandomized — see ``tests/conftest.py``), and the full checker rides
along on every generated cell.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, strategies as st

from repro.checks.checker import CheckingRunner
from repro.core.configs import ConfigName
from repro.engine.perfmodel import PerformanceModel
from repro.engine.placement import Location, PlacementMix
from repro.machine.presets import knl7210
from repro.memory.dram import ddr4_archer
from repro.memory.mcdram import mcdram_archer
from repro.memory.modes import MCDRAMConfig, MemorySystem
from repro.memory.tlb import TLBModel
from repro.workloads.registry import FROM_GB

pytestmark = pytest.mark.metamorphic

GIB = 1 << 30


# -- the checker holds across the whole input domain --------------------------


@given(
    workload=st.sampled_from(sorted(FROM_GB)),
    size_gb=st.floats(0.5, 4.0),
    config=st.sampled_from(list(ConfigName)),
    threads=st.sampled_from([64, 128, 192, 256]),
)
def test_checker_accepts_any_in_domain_cell(workload, size_gb, config, threads):
    # Raise-mode checking: any violation fails the property immediately.
    runner = CheckingRunner(mode="raise")
    record = runner.run(FROM_GB[workload](size_gb), config, threads)
    assert runner.runs_checked == 1
    if record.metric is not None:
        assert record.metric > 0


# -- footprint growth ---------------------------------------------------------


@given(
    footprint=st.integers(1 << 20, 64 * GIB),
    pattern=st.sampled_from(["sequential", "random"]),
)
def test_doubling_footprint_never_raises_cache_hit_rate(footprint, pattern):
    cache = MemorySystem(MCDRAMConfig.cache()).cache_model
    smaller = cache.hit_rate(footprint, pattern)
    larger = cache.hit_rate(2 * footprint, pattern)
    assert 0.0 <= larger <= smaller <= 1.0


@given(footprint=st.integers(1 << 20, 64 * GIB))
def test_doubling_footprint_never_lowers_tlb_miss_rates(footprint):
    tlb = TLBModel()
    for rate in (tlb.l1_miss_rate, tlb.l2_miss_rate):
        assert 0.0 <= rate(footprint) <= rate(2 * footprint) <= 1.0
    # Walks can never outnumber L1 misses: the L2 filters the L1 stream.
    assert tlb.l2_miss_rate(footprint) <= tlb.l1_miss_rate(footprint)
    assert 0.0 <= tlb.walk_depth(footprint) <= tlb.walk_levels


# -- device perturbations -----------------------------------------------------


def _time_ns(memory, mix, workload_name="minife", size_gb=1.0, threads=64):
    model = PerformanceModel(knl7210(), memory)
    profile = FROM_GB[workload_name](size_gb).profile()
    return model.run(profile, mix, threads).time_ns


@given(factor=st.floats(0.2, 0.9))
def test_derating_mcdram_bandwidth_never_speeds_up_hbm_runs(factor):
    device = mcdram_archer()
    derated = dataclasses.replace(
        device,
        peak_bandwidth=device.peak_bandwidth * factor,
        random_bandwidth_cap=device.random_bandwidth_cap * factor,
    )
    baseline = _time_ns(
        MemorySystem(MCDRAMConfig.flat()), PlacementMix.pure(Location.HBM)
    )
    slowed = _time_ns(
        MemorySystem(MCDRAMConfig.flat(), mcdram=derated),
        PlacementMix.pure(Location.HBM),
    )
    assert slowed >= baseline * (1 - 1e-9)


@given(threads=st.sampled_from([64, 128, 256]))
def test_swapping_devices_flips_the_streaming_ordering(threads):
    mix_hbm = PlacementMix.pure(Location.HBM)
    mix_dram = PlacementMix.pure(Location.DRAM)
    normal = MemorySystem(MCDRAMConfig.flat())
    assert _time_ns(normal, mix_hbm, threads=threads) <= _time_ns(
        normal, mix_dram, threads=threads
    )
    # Put the DDR4 device behind the "HBM" node and vice versa: the
    # streaming advantage must follow the device, not the label.
    swapped = MemorySystem(
        MCDRAMConfig.flat(),
        dram=dataclasses.replace(
            mcdram_archer(), capacity_bytes=ddr4_archer().capacity_bytes
        ),
        mcdram=dataclasses.replace(
            ddr4_archer(), capacity_bytes=mcdram_archer().capacity_bytes
        ),
    )
    assert _time_ns(swapped, mix_dram, threads=threads) <= _time_ns(
        swapped, mix_hbm, threads=threads
    )


# -- capacity boundaries ------------------------------------------------------


# DGEMM's footprint tracks the requested size near-exactly (GUPS snaps
# to power-of-two tables), so the 16 GiB = 17.18 GB boundary is sharp.
@given(size_gb=st.floats(17.5, 90.0))
def test_over_capacity_hbm_bind_is_always_infeasible(size_gb):
    runner = CheckingRunner(mode="raise")
    record = runner.run(FROM_GB["dgemm"](size_gb), ConfigName.HBM, 64)
    assert record.metric is None
    assert record.infeasible_reason is not None


@given(size_gb=st.floats(0.5, 15.0))
def test_within_capacity_hbm_bind_is_always_feasible(size_gb):
    runner = CheckingRunner(mode="raise")
    record = runner.run(FROM_GB["dgemm"](size_gb), ConfigName.HBM, 64)
    assert record.metric is not None
