"""The invariant registry: structure, and that every law can actually fire.

A checker that never fires is indistinguishable from no checker, so for
each registered invariant this module constructs a *tampered* subject —
a record with a scaled phase time, a metrics window reporting too many
cache hits, a fabricated metric on an over-capacity bind — and asserts
the invariant produces a violation naming itself.  The clean-path
counterpart (real runs produce zero violations) lives in
``test_checker.py`` and ``test_golden_identity_checked.py``.
"""

from __future__ import annotations

import dataclasses
import re

import pytest

from repro.checks.checker import check_exhibit, check_run, check_sweep
from repro.checks.invariants import (
    REGISTRY,
    Scope,
    Violation,
    invariant,
    unregister,
)
from repro.checks.window import metrics_window
from repro.core.configs import ConfigName, make_config
from repro.core.runner import ExperimentRunner, RunRecord
from repro.workloads.registry import FROM_GB


def _checked_inputs(workload, config_name, num_threads=64):
    """Run one real cell and hand back everything check_run needs."""
    runner = ExperimentRunner()
    config = make_config(config_name)
    with metrics_window() as window:
        record = runner.run(workload, config, num_threads)
    return runner.machine, config, record, window


def _violated(report):
    return {v.invariant for v in report.violations}


class TamperWindow:
    """A MetricsWindow proxy with selected deltas/gauges overridden."""

    def __init__(self, window, deltas=None, gauges=None):
        self._window = window
        self._deltas = deltas or {}
        self._gauges = gauges or {}

    @staticmethod
    def _key(name, labels):
        return (name, tuple(sorted(labels.items())) if labels else ())

    def delta(self, name, labels=None):
        key = self._key(name, labels)
        if key in self._deltas:
            return self._deltas[key]
        return self._window.delta(name, labels)

    def gauge(self, name, labels=None):
        key = self._key(name, labels)
        if key in self._gauges:
            return self._gauges[key]
        return self._window.gauge(name, labels)


class FakeExhibit:
    def __init__(self, data, text="body"):
        self.exhibit_id = "fake"
        self.data = data
        self._text = text

    def render(self):
        return self._text


# -- registry structure -------------------------------------------------------


def test_registry_names_are_kebab_case():
    for name in REGISTRY:
        assert re.fullmatch(r"[a-z0-9]+(-[a-z0-9]+)+", name), name


def test_registry_entries_are_documented():
    for inv in REGISTRY.values():
        assert isinstance(inv.scope, Scope)
        assert inv.description.strip()
        assert inv.paper_ref.strip()
        assert inv.name in REGISTRY


def test_registry_covers_all_scopes():
    scopes = {inv.scope for inv in REGISTRY.values()}
    assert scopes == set(Scope)


def test_registry_rejects_duplicate_names():
    name = next(iter(REGISTRY))
    with pytest.raises(ValueError, match="already registered"):
        invariant(
            name, scope=Scope.RUN, description="dup", paper_ref="none"
        )(lambda ctx: None)


def test_unregister_removes_temporary_invariants():
    @invariant(
        "temporary-test-invariant",
        scope=Scope.RUN,
        description="temp",
        paper_ref="none",
    )
    def _temp(ctx):
        return []

    assert "temporary-test-invariant" in REGISTRY
    unregister("temporary-test-invariant")
    assert "temporary-test-invariant" not in REGISTRY


# -- run scope: tampered subjects fire ---------------------------------------


def test_byte_conservation_detects_phantom_dram_traffic():
    machine, config, record, window = _checked_inputs(
        FROM_GB["minife"](1.0), ConfigName.DRAM
    )
    bad = TamperWindow(
        window,
        deltas={
            TamperWindow._key("model.bytes_moved", {"device": "dram"}): (
                window.delta("model.bytes_moved", {"device": "dram"}) + 1e9
            )
        },
    )
    report = check_run(machine, FROM_GB["minife"](1.0), config, 64, record, bad)
    assert "byte-conservation" in _violated(report)


def test_byte_conservation_detects_unaccounted_bytes():
    machine, config, record, window = _checked_inputs(
        FROM_GB["minife"](1.0), ConfigName.HBM
    )
    bad = TamperWindow(
        window,
        deltas={
            TamperWindow._key("model.bytes_moved", {"device": "mcdram"}): 0.0,
            TamperWindow._key("model.bytes_moved", {"device": "dram"}): 0.0,
        },
    )
    report = check_run(machine, FROM_GB["minife"](1.0), config, 64, record, bad)
    assert "byte-conservation" in _violated(report)


def test_mcdram_cache_accounting_detects_inflated_hits():
    workload = FROM_GB["gups"](1.0)
    machine, config, record, window = _checked_inputs(workload, ConfigName.CACHE)
    labels = {"pattern": "random"}
    bad = TamperWindow(
        window,
        deltas={
            TamperWindow._key("mcdram_cache.hits", labels): (
                window.delta("mcdram_cache.hits", labels)
                + window.delta("mcdram_cache.accesses", labels)
            )
        },
    )
    report = check_run(machine, workload, config, 64, record, bad)
    assert "mcdram-cache-accounting" in _violated(report)


def test_mcdram_cache_accounting_detects_out_of_range_gauge():
    workload = FROM_GB["gups"](1.0)
    machine, config, record, window = _checked_inputs(workload, ConfigName.CACHE)
    bad = TamperWindow(
        window,
        gauges={
            TamperWindow._key("mcdram_cache.hit_rate", {"pattern": "random"}): 1.5
        },
    )
    report = check_run(machine, workload, config, 64, record, bad)
    assert "mcdram-cache-accounting" in _violated(report)


def test_tlb_accounting_detects_excess_walks():
    workload = FROM_GB["gups"](1.0)
    machine, config, record, window = _checked_inputs(workload, ConfigName.DRAM)
    bad = TamperWindow(
        window,
        deltas={
            TamperWindow._key("tlb.walks", None): (
                window.delta("tlb.l1_misses") * 2.0 + 1.0
            )
        },
    )
    report = check_run(machine, workload, config, 64, record, bad)
    assert "tlb-accounting" in _violated(report)


def test_littles_law_detects_scaled_bandwidth():
    workload = FROM_GB["gups"](1.0)
    machine, config, record, window = _checked_inputs(workload, ConfigName.DRAM)
    run = record.run_result
    faster = dataclasses.replace(
        run,
        phase_results=tuple(
            dataclasses.replace(
                p,
                memory_time_ns=p.memory_time_ns / 10.0,
                achieved_bandwidth=p.achieved_bandwidth * 10.0,
            )
            for p in run.phase_results
        ),
    )
    tampered = dataclasses.replace(record, run_result=faster)
    report = check_run(machine, workload, config, 64, tampered, window)
    assert "littles-law-concurrency" in _violated(report)


def test_capacity_feasibility_detects_silent_spill():
    workload = FROM_GB["gups"](32.0)  # far over the 16 GiB flat HBM node
    machine = ExperimentRunner().machine
    config = make_config(ConfigName.HBM)
    fabricated = RunRecord(
        workload=workload.spec.name,
        workload_params=workload.params(),
        config=ConfigName.HBM,
        num_threads=64,
        metric=0.01,
        metric_name=workload.spec.metric_name,
        metric_unit=workload.spec.metric_unit,
    )
    report = check_run(machine, workload, config, 64, fabricated)
    assert "capacity-feasibility" in _violated(report)


def test_capacity_feasibility_detects_spurious_rejection():
    workload = FROM_GB["gups"](1.0)  # comfortably fits the HBM node
    machine = ExperimentRunner().machine
    config = make_config(ConfigName.HBM)
    fabricated = RunRecord(
        workload=workload.spec.name,
        workload_params=workload.params(),
        config=ConfigName.HBM,
        num_threads=64,
        metric=None,
        metric_name=workload.spec.metric_name,
        metric_unit=workload.spec.metric_unit,
        infeasible_reason="data does not fit node 1",
    )
    report = check_run(machine, workload, config, 64, fabricated)
    assert "capacity-feasibility" in _violated(report)


def test_timing_composition_detects_scaled_phase_time():
    workload = FROM_GB["minife"](1.0)
    machine, config, record, window = _checked_inputs(workload, ConfigName.DRAM)
    run = record.run_result
    slowed = dataclasses.replace(
        run,
        phase_results=tuple(
            dataclasses.replace(p, time_ns=p.time_ns * 2.0)
            for p in run.phase_results
        ),
    )
    tampered = dataclasses.replace(record, run_result=slowed)
    report = check_run(machine, workload, config, 64, tampered, window)
    assert "timing-composition" in _violated(report)


def test_clean_run_passes_every_run_invariant():
    workload = FROM_GB["gups"](1.0)
    machine, config, record, window = _checked_inputs(workload, ConfigName.CACHE)
    report = check_run(machine, workload, config, 64, record, window)
    assert report.ok, [v.describe() for v in report.violations]
    assert len(report.evaluated) > 0


# -- sweep scope --------------------------------------------------------------


def _trio_entries(workload, num_threads=64):
    runner = ExperimentRunner()
    entries = []
    for name in ConfigName.paper_trio():
        config = make_config(name)
        record = runner.run(workload, config, num_threads)
        entries.append((workload, config, num_threads, record))
    return runner.machine, entries


def test_streaming_ordering_detects_swapped_metrics():
    workload = FROM_GB["minife"](4.0)
    machine, entries = _trio_entries(workload)
    swapped = []
    by_name = {config.name: record for _, config, _, record in entries}
    for wl, config, threads, record in entries:
        other = (
            ConfigName.HBM if config.name is ConfigName.DRAM else ConfigName.DRAM
        )
        if config.name in (ConfigName.DRAM, ConfigName.HBM):
            record = dataclasses.replace(record, metric=by_name[other].metric)
        swapped.append((wl, config, threads, record))
    report = check_sweep(swapped, machine=machine, axis="size")
    assert "streaming-config-ordering" in _violated(report)


def test_random_dram_preference_detects_degraded_dram():
    workload = FROM_GB["gups"](1.0)
    machine, entries = _trio_entries(workload)
    nerfed = [
        (
            wl,
            config,
            threads,
            dataclasses.replace(record, metric=record.metric * 0.1)
            if config.name is ConfigName.DRAM and record.metric is not None
            else record,
        )
        for wl, config, threads, record in entries
    ]
    report = check_sweep(nerfed, machine=machine, axis="size")
    assert "random-dram-preference" in _violated(report)


def test_random_dram_preference_not_applicable_past_one_thread_per_core():
    workload = FROM_GB["gups"](1.0)
    machine, entries = _trio_entries(workload, num_threads=128)
    report = check_sweep(entries, machine=machine, axis="size")
    assert "random-dram-preference" not in report.evaluated


def test_thread_scaling_detects_pre_peak_dip():
    workload = FROM_GB["gups"](1.0)
    runner = ExperimentRunner()
    config = make_config(ConfigName.HBM)
    entries = []
    for threads, forced in ((64, 10.0), (128, 5.0), (256, 20.0)):
        record = runner.run(workload, config, threads)
        entries.append(
            (workload, config, threads, dataclasses.replace(record, metric=forced))
        )
    report = check_sweep(entries, machine=runner.machine, axis="threads")
    assert "thread-scaling-unimodal" in _violated(report)
    # The same dip along a *size* axis is not this invariant's business.
    report = check_sweep(entries, machine=runner.machine, axis="size")
    assert "thread-scaling-unimodal" not in report.evaluated


# -- exhibit scope ------------------------------------------------------------


def test_latency_ordering_detects_hbm_faster_than_dram():
    report = check_exhibit(
        FakeExhibit(
            {
                "blocks": [1 << 20, 1 << 21],
                "dram_ns": [100.0, 110.0],
                "hbm_ns": [90.0, 130.0],
                "gap_percent": [-10.0, 130.0 / 110.0 * 100 - 100],
            }
        )
    )
    assert "latency-device-ordering" in _violated(report)


def test_latency_ordering_detects_non_monotone_curve():
    report = check_exhibit(
        FakeExhibit(
            {
                "blocks": [1 << 20, 1 << 21],
                "dram_ns": [120.0, 100.0],
                "hbm_ns": [130.0, 125.0],
                "gap_percent": [130.0 / 120.0 * 100 - 100, 25.0],
            }
        )
    )
    assert "latency-device-ordering" in _violated(report)


def test_latency_ordering_detects_inconsistent_gap():
    report = check_exhibit(
        FakeExhibit(
            {
                "blocks": [1 << 20],
                "dram_ns": [100.0],
                "hbm_ns": [120.0],
                "gap_percent": [3.0],  # curves say 20 %
            }
        )
    )
    assert "latency-device-ordering" in _violated(report)


def test_exhibit_sanity_detects_nan_and_empty_render():
    report = check_exhibit(
        FakeExhibit({"series": [1.0, float("nan")]}, text="  \n ")
    )
    assert _violated(report) == {"exhibit-data-sanity"}
    assert len(report.violations) == 2


def test_violation_describe_names_the_invariant():
    violation = Violation("some-law", "subject", "broke")
    assert violation.describe() == "[some-law] subject: broke"
