"""Memory mode / MemorySystem tests."""

import pytest

from repro.memory.modes import (
    HYBRID_CACHE_FRACTIONS,
    MCDRAMConfig,
    MemoryMode,
    MemorySystem,
)
from repro.util.units import GiB


class TestMCDRAMConfig:
    def test_flat(self):
        c = MCDRAMConfig.flat()
        assert c.mode is MemoryMode.FLAT
        assert c.cache_fraction == 0.0

    def test_cache(self):
        c = MCDRAMConfig.cache()
        assert c.cache_fraction == 1.0

    def test_hybrid_fractions_restricted(self):
        for f in HYBRID_CACHE_FRACTIONS:
            MCDRAMConfig.hybrid(f)
        with pytest.raises(ValueError):
            MCDRAMConfig.hybrid(0.3)

    def test_mode_fraction_consistency(self):
        with pytest.raises(ValueError):
            MCDRAMConfig(MemoryMode.FLAT, 0.5)
        with pytest.raises(ValueError):
            MCDRAMConfig(MemoryMode.CACHE, 0.5)

    def test_associativity_checked(self):
        with pytest.raises(ValueError):
            MCDRAMConfig.cache(cache_associativity=0)


class TestFlatSystem:
    def test_two_numa_nodes(self):
        s = MemorySystem(MCDRAMConfig.flat())
        assert s.topology.num_nodes == 2
        assert s.topology.node(1).capacity_bytes == 16 * GiB

    def test_no_cache_model(self):
        s = MemorySystem(MCDRAMConfig.flat())
        assert s.cache_model is None
        assert not s.dram_fronted_by_cache
        assert s.has_flat_hbm

    def test_device_of_node(self):
        s = MemorySystem(MCDRAMConfig.flat())
        assert s.device_of_node(0).name == "DDR4"
        assert s.device_of_node(1).name == "MCDRAM"


class TestCacheSystem:
    def test_single_numa_node(self):
        s = MemorySystem(MCDRAMConfig.cache())
        assert s.topology.num_nodes == 1
        assert not s.has_flat_hbm

    def test_cache_model_full_capacity(self):
        s = MemorySystem(MCDRAMConfig.cache())
        assert s.cache_model is not None
        assert s.cache_model.capacity_bytes == 16 * GiB
        assert s.dram_fronted_by_cache

    def test_numactl_hardware_matches_table2_right(self):
        text = MemorySystem(MCDRAMConfig.cache()).numactl_hardware()
        assert "0 (96 GB)" in text
        assert "16 GB" not in text


class TestHybridSystem:
    def test_partition(self):
        s = MemorySystem(MCDRAMConfig.hybrid(0.5))
        assert s.cache_bytes == 8 * GiB
        assert s.flat_hbm_bytes == 8 * GiB
        assert s.topology.num_nodes == 2
        assert s.topology.node(1).capacity_bytes == 8 * GiB
        assert s.cache_model is not None
        assert s.cache_model.capacity_bytes == 8 * GiB

    @pytest.mark.parametrize("fraction", HYBRID_CACHE_FRACTIONS)
    def test_partitions_sum(self, fraction):
        s = MemorySystem(MCDRAMConfig.hybrid(fraction))
        assert s.cache_bytes + s.flat_hbm_bytes == 16 * GiB

    def test_describe(self):
        text = MemorySystem(MCDRAMConfig.hybrid(0.25)).describe()
        assert "hybrid" in text
        assert "4 GiB" in text
        assert "12 GiB" in text
