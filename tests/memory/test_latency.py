"""Loaded-latency model tests."""

import pytest

from repro.memory.latency import LoadedLatencyModel


class TestLoadedLatency:
    def test_idle_at_zero_demand(self):
        m = LoadedLatencyModel()
        assert m.effective_latency_ns(130.4, 0.0, 80e9) == pytest.approx(130.4)

    def test_inflates_with_utilization(self):
        m = LoadedLatencyModel()
        low = m.effective_latency_ns(130.4, 10e9, 80e9)
        high = m.effective_latency_ns(130.4, 70e9, 80e9)
        assert high > low > 130.4

    def test_clamped_beyond_capacity(self):
        m = LoadedLatencyModel()
        at_cap = m.effective_latency_ns(130.4, 80e9, 80e9)
        over = m.effective_latency_ns(130.4, 800e9, 80e9)
        assert over == at_cap  # utilization clamp keeps it finite

    def test_disabled_when_factor_zero(self):
        m = LoadedLatencyModel(queue_factor=0.0)
        assert m.effective_latency_ns(100.0, 79e9, 80e9) == pytest.approx(100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadedLatencyModel(max_utilization=1.0)
        with pytest.raises(ValueError):
            LoadedLatencyModel(queue_factor=-0.1)
        m = LoadedLatencyModel()
        with pytest.raises(ValueError):
            m.effective_latency_ns(0.0, 1.0, 1.0)
