"""Hot-page migration policy tests."""

import numpy as np
import pytest

from repro.memory.migration import (
    MigrationPolicy,
    simulate_migration,
    uniform_page_weights,
    zipfian_page_weights,
)


class TestWeights:
    def test_zipf_sums_to_one(self):
        w = zipfian_page_weights(1000)
        assert w.sum() == pytest.approx(1.0)
        assert w.max() > 20 * w.mean()

    def test_uniform(self):
        w = uniform_page_weights(10)
        assert (w == 0.1).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            zipfian_page_weights(0)
        with pytest.raises(ValueError):
            zipfian_page_weights(10, skew=0.0)


class TestSimulation:
    def test_zipf_converges_to_high_hit_rate(self):
        weights = zipfian_page_weights(10_000)
        policy = MigrationPolicy(hbm_pages=1000, budget_pages_per_epoch=500)
        outcome = simulate_migration(weights, policy, epochs=25, seed=1)
        # 10% of pages hold the Zipf mass: resident hot set serves most
        # accesses once migration converges.
        assert outcome.hbm_hit_fraction > 0.6
        assert outcome.converged

    def test_uniform_capped_by_capacity_ratio(self):
        weights = uniform_page_weights(10_000)
        policy = MigrationPolicy(hbm_pages=1000, budget_pages_per_epoch=500)
        outcome = simulate_migration(weights, policy, epochs=20, seed=2)
        # No hot set exists: hit rate ~ capacity ratio (10%).
        assert outcome.hbm_hit_fraction < 0.2

    def test_zipf_beats_uniform(self):
        policy = MigrationPolicy(hbm_pages=500, budget_pages_per_epoch=250)
        zipf = simulate_migration(
            zipfian_page_weights(5000), policy, epochs=15, seed=3
        )
        uniform = simulate_migration(
            uniform_page_weights(5000), policy, epochs=15, seed=3
        )
        assert zipf.hbm_hit_fraction > 2 * uniform.hbm_hit_fraction

    def test_budget_limits_convergence_speed(self):
        weights = zipfian_page_weights(8000)
        fast = simulate_migration(
            weights, MigrationPolicy(hbm_pages=800, budget_pages_per_epoch=800),
            epochs=20, seed=4,
        )
        slow = simulate_migration(
            weights, MigrationPolicy(hbm_pages=800, budget_pages_per_epoch=50),
            epochs=20, seed=4,
        )
        assert fast.hbm_hit_fraction >= slow.hbm_hit_fraction

    def test_residency_never_exceeds_capacity(self):
        weights = zipfian_page_weights(2000)
        policy = MigrationPolicy(hbm_pages=100, budget_pages_per_epoch=1000)
        outcome = simulate_migration(weights, policy, epochs=10, seed=5)
        # Indirect: migrations happened yet hit rate is bounded by what
        # 100 resident pages can serve.
        top100 = np.sort(weights)[::-1][:100].sum()
        assert outcome.hbm_hit_fraction <= top100 + 0.02

    def test_migration_traffic_accounted(self):
        weights = zipfian_page_weights(2000)
        policy = MigrationPolicy(hbm_pages=200)
        outcome = simulate_migration(weights, policy, epochs=5, seed=6)
        assert outcome.migration_traffic_bytes == (
            outcome.migrated_pages * 2 * 4096
        )

    def test_weight_validation(self):
        policy = MigrationPolicy(hbm_pages=10)
        with pytest.raises(ValueError):
            simulate_migration(np.array([0.5, 0.4]), policy)
        with pytest.raises(ValueError):
            simulate_migration(np.array([]), policy)
