"""MCDRAM memory-side cache model tests — the heart of Fig. 2's shape."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.dram import ddr4_archer
from repro.memory.mcdram import mcdram_archer
from repro.memory.mcdram_cache import MCDRAMCacheModel
from repro.util.units import GB, GiB


@pytest.fixture()
def cache():
    return MCDRAMCacheModel(mcdram_archer(), ddr4_archer())


@pytest.fixture()
def assoc_cache():
    return MCDRAMCacheModel(mcdram_archer(), ddr4_archer(), associativity=8)


class TestConstruction:
    def test_defaults_to_full_mcdram(self, cache):
        assert cache.capacity_bytes == 16 * GiB

    def test_partition(self):
        c = MCDRAMCacheModel(
            mcdram_archer(), ddr4_archer(), capacity_bytes=8 * GiB
        )
        assert c.capacity_bytes == 8 * GiB

    def test_capacity_bounded(self):
        with pytest.raises(ValueError):
            MCDRAMCacheModel(
                mcdram_archer(), ddr4_archer(), capacity_bytes=32 * GiB
            )

    @pytest.mark.parametrize("bad", [0.0, 1.5])
    def test_protocol_efficiency_range(self, bad):
        with pytest.raises(ValueError):
            MCDRAMCacheModel(
                mcdram_archer(), ddr4_archer(), protocol_efficiency=bad
            )


class TestStreamingAnchors:
    """The paper's measured STREAM cache-mode points (Fig. 2)."""

    def test_peak_at_8gb(self, cache):
        bw = cache.streaming_bandwidth(8 * GB)
        assert bw == pytest.approx(260e9, rel=0.03)

    def test_drop_at_11_4gb(self, cache):
        bw = cache.streaming_bandwidth(int(11.4 * GB))
        assert bw == pytest.approx(125e9, rel=0.03)

    def test_below_dram_beyond_24gb(self, cache):
        dram_bw = ddr4_archer().stream_bandwidth(1)
        assert cache.streaming_bandwidth(24 * GB) < dram_bw
        assert cache.streaming_bandwidth(40 * GB) < dram_bw

    def test_between_drop_and_dram_at_16gb(self, cache):
        bw = cache.streaming_bandwidth(16 * GB)
        assert 77e9 < bw < 125e9

    def test_asymptote_above_half_dram(self, cache):
        """All-miss cache mode serializes a DDR read behind the protocol
        but never collapses below the additive bound."""
        bw = cache.streaming_bandwidth(200 * GB)
        assert 55e9 < bw < 77e9


class TestHitRateProperties:
    @given(st.integers(min_value=0, max_value=100 * GB))
    @settings(max_examples=60, deadline=None)
    def test_hit_rates_are_probabilities(self, footprint):
        c = MCDRAMCacheModel(mcdram_archer(), ddr4_archer())
        for pattern in ("sequential", "random"):
            h = c.hit_rate(footprint, pattern)
            assert 0.0 <= h <= 1.0

    @given(
        st.lists(
            st.integers(min_value=1, max_value=100 * GB),
            min_size=2,
            max_size=10,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_streaming_hit_rate_monotone_decreasing(self, footprints):
        c = MCDRAMCacheModel(mcdram_archer(), ddr4_archer())
        footprints.sort()
        rates = [c.streaming_hit_rate(f) for f in footprints]
        for earlier, later in zip(rates, rates[1:]):
            assert later <= earlier + 1e-9

    @given(st.integers(min_value=17 * GiB, max_value=200 * GB))
    @settings(max_examples=40, deadline=None)
    def test_residency_bound_beyond_capacity(self, footprint):
        c = MCDRAMCacheModel(mcdram_archer(), ddr4_archer())
        r = c.footprint_ratio(footprint)
        assert c.streaming_hit_rate(footprint) <= 1.0 / r + 1e-9
        assert c.random_hit_rate(footprint) <= 1.0 / r + 1e-9

    def test_random_hit_rate_closed_form(self, cache):
        # h(r) = (1/r)(1 - e^-r) at r = 1.
        import math

        h = cache.random_hit_rate(16 * GiB)
        assert h == pytest.approx(1 - math.exp(-1), rel=1e-6)

    def test_unknown_pattern_rejected(self, cache):
        with pytest.raises(ValueError):
            cache.hit_rate(GB, "strided")


class TestAssociativityAblation:
    """The paper blames direct mapping for premature conflicts; an 8-way
    organization removes the below-capacity drop."""

    def test_no_premature_drop_when_fitting(self, cache, assoc_cache):
        footprint = int(11.4 * GB)  # fits in 16 GiB
        assert assoc_cache.streaming_hit_rate(footprint) == 1.0
        assert cache.streaming_hit_rate(footprint) < 0.8

    def test_assoc_bandwidth_dominates_direct(self, cache, assoc_cache):
        for gb in (4, 8, 11.4, 16, 24, 32):
            f = int(gb * GB)
            assert (
                assoc_cache.streaming_bandwidth(f)
                >= cache.streaming_bandwidth(f) - 1e-6
            )

    def test_random_hit_rate_improves(self, cache, assoc_cache):
        f = 8 * GB
        assert assoc_cache.random_hit_rate(f) > cache.random_hit_rate(f)


class TestRandomPath:
    def test_latency_worse_than_dram_when_thrashing(self, cache):
        """Big random footprints: tag probe + DDR — the Fig. 4 bottom story."""
        lat = cache.random_latency_ns(90 * GB)
        assert lat > ddr4_archer().idle_latency_ns

    def test_latency_close_to_mcdram_when_fitting(self, cache):
        lat = cache.random_latency_ns(1 * GB)
        assert lat == pytest.approx(mcdram_archer().idle_latency_ns, rel=0.1)

    def test_random_cap_bounded_by_protocol(self, cache):
        cap = cache.random_bandwidth_cap(1 * GB)
        assert cap <= mcdram_archer().random_bandwidth() * 0.8 + 1e-6

    def test_random_cap_degrades_once_ddr_side_binds(self, cache):
        """The MCDRAM probe path caps moderate footprints; far beyond
        capacity the DDR side (serving ~all misses) becomes the limiter."""
        assert cache.random_bandwidth_cap(200 * GB) < cache.random_bandwidth_cap(
            1 * GB
        )

    def test_write_penalty_passes_through(self, cache):
        assert cache.random_bandwidth_cap(8 * GB, 0.5) < cache.random_bandwidth_cap(
            8 * GB, 0.0
        )


class TestTraffic:
    def test_streaming_traffic_conservation(self, cache):
        t = cache.streaming_traffic(8 * GB)
        assert t.mcdram_bytes == pytest.approx(1.0)
        assert t.dram_bytes == pytest.approx(1.0 - t.hit_rate)

    def test_footprint_ratio(self, cache):
        assert cache.footprint_ratio(16 * GiB) == pytest.approx(1.0)

    def test_negative_footprint_rejected(self, cache):
        with pytest.raises(ValueError):
            cache.footprint_ratio(-1)


class TestColumnarTwins:
    """Every ``*_many`` method equals its scalar twin bit-for-bit.

    The batch engine (repro.engine.batch) fills its memo tables through
    these columnar paths, so approximate equality is not enough: the
    identity contract demands the exact IEEE bits over a footprint grid
    that exercises every branch (empty, fitting, exactly-at-capacity,
    survival-spline region, modulo-mapping bound, far-beyond-capacity).
    """

    FOOTPRINTS = [
        0,
        4096,
        1 * GB,
        8 * GB,
        16 * GiB - 64,
        16 * GiB,
        16 * GiB + 64,
        24 * GB,
        40 * GB,
        200 * GB,
    ]

    @pytest.fixture(params=[1, 8], ids=["direct", "assoc8"])
    def any_cache(self, request):
        return MCDRAMCacheModel(
            mcdram_archer(), ddr4_archer(), associativity=request.param
        )

    def column(self):
        import numpy as np

        return np.array(self.FOOTPRINTS, dtype=np.int64)

    @pytest.mark.parametrize("pattern", ["sequential", "random"])
    def test_hit_rate_many(self, any_cache, pattern):
        many = any_cache.hit_rate_many(self.column(), pattern)
        for fp, got in zip(self.FOOTPRINTS, many.tolist()):
            assert got == any_cache.hit_rate(fp, pattern), fp

    def test_hit_rate_many_rejects_unknown_pattern(self, any_cache):
        with pytest.raises(ValueError):
            any_cache.hit_rate_many(self.column(), "strided")

    @pytest.mark.parametrize("tpc", [1, 2, 4])
    @pytest.mark.parametrize("wf", [0.0, 0.5])
    def test_streaming_bandwidth_many(self, any_cache, tpc, wf):
        many = any_cache.streaming_bandwidth_many(self.column(), tpc, wf)
        for fp, got in zip(self.FOOTPRINTS, many.tolist()):
            assert got == any_cache.streaming_bandwidth(fp, tpc, wf), fp

    @pytest.mark.parametrize("wf", [0.0, 0.5])
    def test_random_bandwidth_cap_many(self, any_cache, wf):
        many = any_cache.random_bandwidth_cap_many(self.column(), wf)
        for fp, got in zip(self.FOOTPRINTS, many.tolist()):
            assert got == any_cache.random_bandwidth_cap(fp, wf), fp

    def test_random_latency_ns_many(self, any_cache):
        many = any_cache.random_latency_ns_many(self.column())
        for fp, got in zip(self.FOOTPRINTS, many.tolist()):
            assert got == any_cache.random_latency_ns(fp), fp
