"""memkind-style heap allocator tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.allocator import AllocationError, HeapAllocator, Kind
from repro.memory.dram import ddr4_archer
from repro.memory.mcdram import mcdram_archer
from repro.memory.numa import NUMANode, NUMATopology, OutOfNodeMemory
from repro.memory.policy import Membind
from repro.util.units import GiB


def flat_topo() -> NUMATopology:
    return NUMATopology(
        [
            NUMANode(0, ddr4_archer(), 96 * GiB),
            NUMANode(1, mcdram_archer(), 16 * GiB),
        ]
    )


def cache_topo() -> NUMATopology:
    return NUMATopology([NUMANode(0, ddr4_archer(), 96 * GiB)])


class TestKinds:
    def test_hbw_binds_node1(self):
        alloc = HeapAllocator(flat_topo()).malloc("x", GiB, kind=Kind.HBW)
        assert alloc.split == {1: GiB}
        assert alloc.fraction_on(1) == 1.0

    def test_hbw_fails_without_hbm_node(self):
        with pytest.raises(AllocationError, match="memkind_hbw"):
            HeapAllocator(cache_topo()).malloc("x", GiB, kind=Kind.HBW)

    def test_hbw_preferred_degrades_gracefully(self):
        alloc = HeapAllocator(cache_topo()).malloc(
            "x", GiB, kind=Kind.HBW_PREFERRED
        )
        assert alloc.split == {0: GiB}

    def test_hbw_preferred_overflows(self):
        alloc = HeapAllocator(flat_topo()).malloc(
            "x", 20 * GiB, kind=Kind.HBW_PREFERRED
        )
        assert alloc.split[1] == 16 * GiB
        assert alloc.split[0] == 4 * GiB

    def test_interleave_spans_nodes(self):
        alloc = HeapAllocator(flat_topo()).malloc(
            "x", 8 * GiB, kind=Kind.INTERLEAVE
        )
        assert alloc.nodes == (0, 1)

    def test_default(self):
        alloc = HeapAllocator(flat_topo()).malloc("x", GiB)
        assert alloc.split == {0: GiB}


class TestAccounting:
    def test_reserve_and_free(self):
        h = HeapAllocator(flat_topo())
        a = h.malloc("a", 4 * GiB, kind=Kind.HBW)
        assert h.topology.node(1).used_bytes == 4 * GiB
        h.free(a)
        assert h.topology.node(1).used_bytes == 0
        assert h.live_allocations == []

    def test_double_free(self):
        h = HeapAllocator(flat_topo())
        a = h.malloc("a", GiB)
        h.free(a)
        with pytest.raises(ValueError):
            h.free(a)

    def test_capacity_enforced_across_allocations(self):
        h = HeapAllocator(flat_topo())
        h.malloc("a", 10 * GiB, kind=Kind.HBW)
        with pytest.raises(OutOfNodeMemory):
            h.malloc("b", 7 * GiB, kind=Kind.HBW)

    def test_failed_allocation_reserves_nothing(self):
        h = HeapAllocator(flat_topo())
        with pytest.raises(OutOfNodeMemory):
            h.malloc("x", 17 * GiB, kind=Kind.HBW)
        assert h.topology.node(1).used_bytes == 0

    def test_used_bytes_per_node(self):
        h = HeapAllocator(flat_topo())
        h.malloc("a", 2 * GiB, kind=Kind.HBW)
        h.malloc("b", 3 * GiB, kind=Kind.DEFAULT)
        assert h.used_bytes(1) == 2 * GiB
        assert h.used_bytes(0) == 3 * GiB
        assert h.used_bytes() == 5 * GiB

    def test_hbm_fraction(self):
        h = HeapAllocator(flat_topo())
        h.malloc("a", 3 * GiB, kind=Kind.HBW)
        h.malloc("b", GiB, kind=Kind.DEFAULT)
        assert h.hbm_fraction() == pytest.approx(0.75)

    def test_free_all(self):
        h = HeapAllocator(flat_topo())
        h.malloc("a", GiB)
        h.malloc("b", GiB, kind=Kind.HBW)
        h.free_all()
        assert h.used_bytes() == 0

    def test_kind_and_policy_exclusive(self):
        h = HeapAllocator(flat_topo())
        with pytest.raises(ValueError):
            h.malloc("x", GiB, kind=Kind.HBW, policy=Membind(0))

    def test_zero_bytes_rejected(self):
        with pytest.raises(ValueError):
            HeapAllocator(flat_topo()).malloc("x", 0)


class TestAllocatorInvariants:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(
                    [Kind.DEFAULT, Kind.HBW, Kind.HBW_PREFERRED, Kind.INTERLEAVE]
                ),
                st.integers(min_value=1, max_value=8 * GiB),
                st.booleans(),  # free it afterwards?
            ),
            max_size=20,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_node_usage_equals_live_sum(self, operations):
        h = HeapAllocator(flat_topo())
        for kind, size, free_it in operations:
            try:
                alloc = h.malloc("x", size, kind=kind)
            except (AllocationError, OutOfNodeMemory):
                continue
            if free_it:
                h.free(alloc)
        for node in h.topology.nodes:
            assert node.used_bytes == h.used_bytes(node.node_id)
            assert 0 <= node.used_bytes <= node.capacity_bytes
