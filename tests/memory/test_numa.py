"""NUMA node/topology tests."""

import pytest

from repro.memory.dram import ddr4_archer
from repro.memory.mcdram import mcdram_archer
from repro.memory.numa import (
    KNL_REMOTE_DISTANCE,
    LOCAL_DISTANCE,
    NUMANode,
    NUMATopology,
    OutOfNodeMemory,
)
from repro.util.units import GiB


def two_node_topology() -> NUMATopology:
    return NUMATopology(
        [
            NUMANode(0, ddr4_archer(), 96 * GiB),
            NUMANode(1, mcdram_archer(), 16 * GiB),
        ]
    )


class TestNode:
    def test_reserve_release(self):
        n = NUMANode(0, ddr4_archer(), 10 * GiB)
        n.reserve(4 * GiB)
        assert n.free_bytes == 6 * GiB
        n.release(4 * GiB)
        assert n.used_bytes == 0

    def test_overflow_raises(self):
        n = NUMANode(1, mcdram_archer(), 16 * GiB)
        with pytest.raises(OutOfNodeMemory) as excinfo:
            n.reserve(17 * GiB)
        assert excinfo.value.node_id == 1
        assert excinfo.value.available == 16 * GiB

    def test_double_free_raises(self):
        n = NUMANode(0, ddr4_archer(), GiB)
        n.reserve(GiB)
        n.release(GiB)
        with pytest.raises(ValueError):
            n.release(1)

    def test_capacity_bounded_by_device(self):
        with pytest.raises(ValueError):
            NUMANode(0, mcdram_archer(), 32 * GiB)

    def test_exact_fill(self):
        n = NUMANode(1, mcdram_archer(), 16 * GiB)
        n.reserve(16 * GiB)
        assert n.free_bytes == 0
        with pytest.raises(OutOfNodeMemory):
            n.reserve(1)


class TestTopology:
    def test_default_distances_are_knl(self):
        t = two_node_topology()
        assert t.distance(0, 0) == LOCAL_DISTANCE == 10
        assert t.distance(0, 1) == KNL_REMOTE_DISTANCE == 31
        assert t.distance(1, 0) == 31

    def test_node_ids_must_be_dense(self):
        with pytest.raises(ValueError):
            NUMATopology([NUMANode(1, ddr4_archer(), GiB)])

    def test_distance_matrix_validation(self):
        nodes = [
            NUMANode(0, ddr4_archer(), GiB),
            NUMANode(1, mcdram_archer(), GiB),
        ]
        with pytest.raises(ValueError, match="symmetric"):
            NUMATopology(nodes, [[10, 31], [21, 10]])
        with pytest.raises(ValueError, match="self-distance"):
            NUMATopology(nodes, [[11, 31], [31, 10]])

    def test_unknown_node(self):
        with pytest.raises(ValueError):
            two_node_topology().node(2)

    def test_totals(self):
        t = two_node_topology()
        assert t.total_capacity_bytes() == 112 * GiB
        t.node(1).reserve(GiB)
        assert t.total_free_bytes() == 111 * GiB


class TestHardwareTable:
    def test_flat_mode_table_matches_table2(self):
        """The left panel of the paper's Table II."""
        text = two_node_topology().describe_hardware()
        lines = text.splitlines()
        assert "0 (96 GB)" in lines[0]
        assert "1 (16 GB)" in lines[0]
        assert lines[1].split()[:3] == ["0", "10", "31"]
        assert lines[2].split()[:3] == ["1", "31", "10"]

    def test_single_node_table(self):
        t = NUMATopology([NUMANode(0, ddr4_archer(), 96 * GiB)])
        text = t.describe_hardware()
        assert "1 (" not in text
        assert "31" not in text
