"""Memory device tests, pinned to the paper's measured characteristics."""

import pytest

from repro.engine.calibration import PAPER_CHARACTERIZATION as P
from repro.memory.device import MemoryDevice
from repro.memory.dram import ddr4_archer
from repro.memory.mcdram import mcdram_archer
from repro.util.units import GB, GiB


class TestDDR4:
    def test_capacity(self):
        assert ddr4_archer().capacity_bytes == 96 * GiB

    def test_channels(self):
        assert ddr4_archer().channels == 6

    def test_idle_latency_matches_paper(self):
        assert ddr4_archer().idle_latency_ns == pytest.approx(P.dram_latency_ns)

    def test_stream_1t_matches_paper(self):
        assert ddr4_archer().stream_bandwidth(1) == pytest.approx(
            P.dram_stream_gbs * GB
        )

    def test_smt_gain_marginal(self):
        """Fig. 5: the four DRAM lines overlap."""
        d = ddr4_archer()
        assert d.stream_bandwidth(4) / d.stream_bandwidth(1) < 1.05

    def test_custom_capacity(self):
        assert ddr4_archer(192).capacity_bytes == 192 * GiB


class TestMCDRAM:
    def test_capacity(self):
        assert mcdram_archer().capacity_bytes == 16 * GiB

    def test_channels(self):
        assert mcdram_archer().channels == 8

    def test_idle_latency_higher_than_dram(self):
        """Section IV-A: HBM latency is ~18% above DRAM."""
        ratio = mcdram_archer().idle_latency_ns / ddr4_archer().idle_latency_ns
        assert ratio == pytest.approx(154.0 / 130.4, rel=1e-6)
        assert 1.15 < ratio < 1.20

    def test_stream_1t_matches_paper(self):
        assert mcdram_archer().stream_bandwidth(1) == pytest.approx(
            P.hbm_stream_gbs * GB
        )

    def test_smt_gain_matches_paper(self):
        m = mcdram_archer()
        assert m.stream_bandwidth(2) / m.stream_bandwidth(1) == pytest.approx(
            P.hbm_smt_gain
        )
        assert m.stream_bandwidth(2) == pytest.approx(419.1 * GB, rel=0.01)

    def test_bandwidth_ratio_is_about_4x(self):
        """The paper's headline '~4x higher bandwidth than DRAM'."""
        ratio = mcdram_archer().stream_bandwidth(1) / ddr4_archer().stream_bandwidth(1)
        assert 4.0 <= ratio <= 4.5

    def test_random_cap_exceeds_dram(self):
        assert (
            mcdram_archer().random_bandwidth()
            > ddr4_archer().random_bandwidth()
        )

    def test_scattered_writes_penalized(self):
        m = mcdram_archer()
        assert m.random_bandwidth(write_fraction=0.5) < m.random_bandwidth()

    def test_gups_ordering(self):
        """With GUPS's 50% write mix, MCDRAM's random capacity falls below
        DDR's — the device-level reason HBM never wins Fig. 4c."""
        assert mcdram_archer().random_bandwidth(
            write_fraction=0.5
        ) < ddr4_archer().random_bandwidth(write_fraction=0.5)


class TestValidation:
    def _device(self, **kw):
        base = dict(
            name="d",
            capacity_bytes=GiB,
            channels=1,
            idle_latency_ns=100.0,
            peak_bandwidth=GB,
            stream_efficiency_1t=0.9,
            smt_bandwidth_gain=1.1,
            random_bandwidth_cap=GB,
        )
        base.update(kw)
        return MemoryDevice(**base)

    def test_fits(self):
        d = self._device()
        assert d.fits(GiB)
        assert not d.fits(GiB + 1)

    def test_fits_rejects_negative(self):
        with pytest.raises(ValueError):
            self._device().fits(-1)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("capacity_bytes", 0),
            ("channels", 0),
            ("idle_latency_ns", -1),
            ("stream_efficiency_1t", 1.5),
            ("smt_bandwidth_gain", 0.9),
            ("random_write_penalty", 1.5),
        ],
    )
    def test_field_validation(self, field, value):
        with pytest.raises(ValueError):
            self._device(**{field: value})

    def test_stream_bandwidth_capped_at_peak(self):
        d = self._device(stream_efficiency_1t=0.95, smt_bandwidth_gain=2.0)
        assert d.stream_bandwidth(2) == d.peak_bandwidth

    def test_write_fraction_range(self):
        with pytest.raises(ValueError):
            self._device().random_bandwidth(write_fraction=1.5)
