"""TLB / page-walk model tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.tlb import TLBModel
from repro.util.units import GiB, KiB, MiB


@pytest.fixture()
def tlb():
    return TLBModel()


class TestCoverage:
    def test_l1_coverage(self, tlb):
        assert tlb.l1_coverage_bytes == 256 * KiB

    def test_l2_coverage(self, tlb):
        assert tlb.l2_coverage_bytes == 1 * MiB

    def test_hugepages_extend_coverage(self):
        huge = TLBModel(page_bytes=2 * MiB)
        assert huge.l1_coverage_bytes == 128 * MiB


class TestMissRates:
    def test_zero_below_coverage(self, tlb):
        assert tlb.l1_miss_rate(128 * KiB) == 0.0
        assert tlb.l2_miss_rate(1 * MiB) == 0.0

    def test_grows_with_footprint(self, tlb):
        assert tlb.l1_miss_rate(4 * MiB) == pytest.approx(1 - 1 / 16)
        assert tlb.l2_miss_rate(4 * MiB) == pytest.approx(0.75)

    @given(st.integers(min_value=0, max_value=1 << 40))
    @settings(max_examples=50, deadline=None)
    def test_rates_are_probabilities_and_ordered(self, footprint):
        t = TLBModel()
        l1 = t.l1_miss_rate(footprint)
        l2 = t.l2_miss_rate(footprint)
        assert 0.0 <= l2 <= l1 <= 1.0


class TestWalkDepth:
    def test_zero_within_walk_cache(self, tlb):
        assert tlb.walk_depth(64 * MiB) == 0.0

    def test_half_level_per_doubling(self, tlb):
        assert tlb.walk_depth(128 * MiB) == pytest.approx(0.5)
        assert tlb.walk_depth(256 * MiB) == pytest.approx(1.0)

    def test_saturates_at_walk_levels(self, tlb):
        assert tlb.walk_depth(1 << 45) == pytest.approx(4.0)

    @given(
        st.tuples(
            st.integers(min_value=1, max_value=1 << 42),
            st.integers(min_value=1, max_value=1 << 42),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_monotone(self, pair):
        t = TLBModel()
        a, b = sorted(pair)
        assert t.walk_depth(a) <= t.walk_depth(b) + 1e-12


class TestOverhead:
    def test_zero_for_small_footprints(self, tlb):
        assert tlb.translation_overhead_ns(128 * KiB, 130.4) == 0.0

    def test_grows_with_memory_latency(self, tlb):
        """Page walks to slower memory cost more — this keeps the Fig. 3
        DRAM-vs-HBM gap alive at gigabyte block sizes."""
        f = 1 * GiB
        assert tlb.translation_overhead_ns(f, 154.0) > tlb.translation_overhead_ns(
            f, 130.4
        )

    def test_monotone_in_footprint(self, tlb):
        values = [
            tlb.translation_overhead_ns(f, 130.4)
            for f in (MiB, 16 * MiB, 256 * MiB, GiB, 16 * GiB)
        ]
        assert values == sorted(values)

    def test_magnitude_at_1gb(self, tlb):
        """Fig. 3 shows ~170-250 ns of growth between 64 MB and 1 GB."""
        growth = tlb.translation_overhead_ns(GiB, 130.4) - tlb.translation_overhead_ns(
            64 * MiB, 130.4
        )
        assert 100 < growth < 350

    def test_validation(self, tlb):
        with pytest.raises(ValueError):
            tlb.translation_overhead_ns(GiB, 0.0)
        with pytest.raises(ValueError):
            tlb.translation_overhead_ns(-1, 100.0)

    def test_field_validation(self):
        with pytest.raises(ValueError):
            TLBModel(l1_entries=0)
        with pytest.raises(ValueError):
            TLBModel(walk_overlap=1.5)


class TestColumnarTwins:
    """Every ``*_many`` method equals its scalar twin bit-for-bit.

    The batch engine fills its TLB memo tables through these columnar
    paths (repro.engine.batch), so the comparison is exact equality —
    not approx — over footprints spanning both TLB coverages, the walk
    cache, and the deep-walk saturation tail.
    """

    FOOTPRINTS = [
        0,
        4 * KiB,
        1 * MiB,
        64 * MiB,
        GiB,
        16 * GiB,
        1024 * GiB,
    ]

    def column(self):
        import numpy as np

        return np.array(self.FOOTPRINTS, dtype=np.int64)

    def test_miss_rates_and_walk_depth_many(self, tlb):
        import numpy as np

        fps = self.column()
        for many, scalar in (
            (tlb.l1_miss_rate_many, tlb.l1_miss_rate),
            (tlb.l2_miss_rate_many, tlb.l2_miss_rate),
            (tlb.walk_depth_many, tlb.walk_depth),
        ):
            got = many(fps)
            assert isinstance(got, np.ndarray)
            for fp, value in zip(self.FOOTPRINTS, got.tolist()):
                assert value == scalar(fp), (many.__name__, fp)

    def test_translation_overhead_many_scalar_latency(self, tlb):
        many = tlb.translation_overhead_ns_many(self.column(), 130.4)
        for fp, got in zip(self.FOOTPRINTS, many.tolist()):
            assert got == tlb.translation_overhead_ns(fp, 130.4), fp

    def test_translation_overhead_many_columnar_latency(self, tlb):
        """DRAM-cached phases price walks at per-element latencies."""
        import numpy as np

        latencies = np.array(
            [130.4 + 7.5 * i for i in range(len(self.FOOTPRINTS))]
        )
        many = tlb.translation_overhead_ns_many(self.column(), latencies)
        for fp, lat, got in zip(
            self.FOOTPRINTS, latencies.tolist(), many.tolist()
        ):
            assert got == tlb.translation_overhead_ns(fp, lat), fp
