"""Placement policy tests (numactl semantics)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.dram import ddr4_archer
from repro.memory.mcdram import mcdram_archer
from repro.memory.numa import NUMANode, NUMATopology, OutOfNodeMemory
from repro.memory.policy import DefaultLocal, Interleave, Membind, Preferred
from repro.util.units import GiB


@pytest.fixture()
def topo():
    return NUMATopology(
        [
            NUMANode(0, ddr4_archer(), 96 * GiB),
            NUMANode(1, mcdram_archer(), 16 * GiB),
        ]
    )


class TestMembind:
    def test_binds_all(self, topo):
        assert Membind(1).split(topo, 4 * GiB) == {1: 4 * GiB}

    def test_strict_failure(self, topo):
        with pytest.raises(OutOfNodeMemory):
            Membind(1).split(topo, 17 * GiB)

    def test_no_mutation_on_split(self, topo):
        Membind(0).split(topo, GiB)
        assert topo.node(0).used_bytes == 0

    def test_describe(self):
        assert Membind(1).describe() == "--membind=1"

    def test_unknown_node(self, topo):
        with pytest.raises(ValueError):
            Membind(5).split(topo, 1)


class TestPreferred:
    def test_prefers_node(self, topo):
        assert Preferred(1).split(topo, GiB) == {1: GiB}

    def test_overflow_to_other(self, topo):
        split = Preferred(1).split(topo, 20 * GiB)
        assert split[1] == 16 * GiB
        assert split[0] == 4 * GiB

    def test_total_exhaustion(self, topo):
        with pytest.raises(OutOfNodeMemory):
            Preferred(1).split(topo, 113 * GiB)

    def test_describe(self):
        assert Preferred(0).describe() == "--preferred=0"


class TestInterleave:
    def test_even_split(self, topo):
        split = Interleave((0, 1)).split(topo, 8 * GiB)
        assert split == {0: 4 * GiB, 1: 4 * GiB}

    def test_odd_byte(self, topo):
        split = Interleave((0, 1)).split(topo, 3)
        assert sum(split.values()) == 3

    def test_redirect_when_node_full(self, topo):
        # 40 GiB interleaved: node 1 saturates at 16, rest goes to node 0.
        split = Interleave((0, 1)).split(topo, 40 * GiB)
        assert split[1] == 16 * GiB
        assert split[0] == 24 * GiB

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ValueError):
            Interleave((0, 0))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Interleave(())

    def test_describe(self):
        assert Interleave((0, 1)).describe() == "--interleave=0,1"

    def test_exhaustion(self, topo):
        with pytest.raises(OutOfNodeMemory):
            Interleave((0, 1)).split(topo, 113 * GiB)


class TestDefaultLocal:
    def test_local_first(self, topo):
        assert DefaultLocal().split(topo, GiB) == {0: GiB}

    def test_overflow_to_hbm(self, topo):
        split = DefaultLocal().split(topo, 100 * GiB)
        assert split[0] == 96 * GiB
        assert split[1] == 4 * GiB


class TestSplitInvariants:
    @given(
        num_bytes=st.integers(min_value=0, max_value=112 * GiB),
        policy_idx=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=50, deadline=None)
    def test_split_sums_to_request(self, num_bytes, policy_idx):
        topo = NUMATopology(
            [
                NUMANode(0, ddr4_archer(), 96 * GiB),
                NUMANode(1, mcdram_archer(), 16 * GiB),
            ]
        )
        policy = [
            Membind(0),
            Preferred(1),
            Interleave((0, 1)),
            DefaultLocal(),
        ][policy_idx]
        try:
            split = policy.split(topo, num_bytes)
        except OutOfNodeMemory:
            return
        assert sum(split.values()) == num_bytes
        assert all(v >= 0 for v in split.values())
        for node_id, amount in split.items():
            assert amount <= topo.node(node_id).capacity_bytes
