"""Package-level hygiene tests."""

import importlib

import pytest

import repro


class TestPackage:
    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.util",
            "repro.machine",
            "repro.memory",
            "repro.runtime",
            "repro.engine",
            "repro.cluster",
            "repro.workloads",
            "repro.core",
            "repro.figures",
            "repro.cli",
        ],
    )
    def test_subpackage_exports_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert getattr(mod, name, None) is not None, f"{module}.{name}"

    def test_no_wildcard_shadowing(self):
        """Top-level names must come from where the docs say they do."""
        from repro.core.runner import ExperimentRunner

        assert repro.ExperimentRunner is ExperimentRunner

    def test_py_typed_marker_ships(self):
        import pathlib

        marker = pathlib.Path(repro.__file__).parent / "py.typed"
        assert marker.exists()
