"""MiniFE tests: mesh, assembly, CG and the workload adapter."""

import numpy as np
import pytest
from scipy.sparse import csr_matrix
from scipy.sparse.linalg import spsolve

from repro.engine.profilephase import AccessPattern
from repro.workloads.minife.assembly import (
    assemble_stiffness,
    assemble_system,
    hex8_stiffness,
)
from repro.workloads.minife.cg import cg_flops, conjugate_gradient
from repro.workloads.minife.mesh import BrickMesh
from repro.workloads.minife.workload import MiniFE
from repro.workloads.common.sparse import CSRMatrix


class TestMesh:
    def test_counts(self):
        m = BrickMesh(2, 3, 4)
        assert m.n_elements == 24
        assert m.n_nodes == 3 * 4 * 5

    def test_connectivity_shape_and_range(self):
        m = BrickMesh.cube(3)
        conn = m.element_connectivity()
        assert conn.shape == (27, 8)
        assert conn.min() >= 0
        assert conn.max() < m.n_nodes

    def test_each_element_has_8_distinct_corners(self):
        conn = BrickMesh.cube(2).element_connectivity()
        for row in conn:
            assert len(set(row.tolist())) == 8

    def test_boundary_nodes(self):
        m = BrickMesh.cube(2)  # 3^3 nodes, 1 interior
        assert m.boundary_nodes().size == 26
        assert m.interior_node_count() == 1

    def test_interior_count_consistent(self):
        m = BrickMesh.cube(4)
        assert m.interior_node_count() + m.boundary_nodes().size == m.n_nodes

    def test_validation(self):
        with pytest.raises(ValueError):
            BrickMesh(0, 1, 1)


class TestElementStiffness:
    def test_symmetric(self):
        ke = hex8_stiffness()
        assert np.allclose(ke, ke.T)

    def test_rows_sum_to_zero(self):
        """Constant fields are in the Laplacian's null space."""
        ke = hex8_stiffness()
        assert np.allclose(ke @ np.ones(8), 0.0, atol=1e-12)

    def test_positive_semidefinite(self):
        eigs = np.linalg.eigvalsh(hex8_stiffness())
        assert eigs.min() > -1e-12

    def test_scales_linearly_with_h(self):
        """For the 3-D Laplacian, Ke ~ h * (reference Ke)."""
        assert np.allclose(hex8_stiffness(2.0), 2.0 * hex8_stiffness(1.0))

    def test_h_validation(self):
        with pytest.raises(ValueError):
            hex8_stiffness(0.0)


class TestAssembly:
    def test_global_symmetric(self):
        k = assemble_stiffness(BrickMesh.cube(3))
        dense = k.to_dense()
        assert np.allclose(dense, dense.T)

    def test_27_point_stencil_interior(self):
        mesh = BrickMesh.cube(4)
        k = assemble_stiffness(mesh)
        # Centre node of a 5x5x5 lattice touches 27 neighbours.
        centre = mesh.node_id(2, 2, 2)
        cols, _ = k.row(int(centre))
        assert cols.size == 27

    def test_nnz_formula_matches_workload(self):
        mesh = BrickMesh.cube(4)
        k = assemble_stiffness(mesh)
        assert k.nnz == MiniFE(nx=4).nnz

    def test_system_boundary_rows_identity(self):
        mesh = BrickMesh.cube(3)
        k, f = assemble_system(mesh)
        for b in mesh.boundary_nodes()[:5]:
            cols, vals = k.row(int(b))
            assert list(cols) == [int(b)]
            assert vals[0] == 1.0
        assert (f[mesh.boundary_nodes()] == 0).all()

    def test_system_spd_on_interior(self):
        mesh = BrickMesh.cube(3)
        k, _ = assemble_system(mesh)
        eigs = np.linalg.eigvalsh(k.to_dense())
        assert eigs.min() > 0


class TestCG:
    def _system(self, n=4):
        mesh = BrickMesh.cube(n)
        return assemble_system(mesh)

    def test_solves_against_scipy(self):
        k, f = self._system()
        ours = conjugate_gradient(k, f, tol=1e-12, max_iterations=500)
        sp = csr_matrix(
            (k.data, k.indices, k.indptr), shape=(k.n_rows, k.n_cols)
        )
        reference = spsolve(sp.tocsc(), f)
        assert ours.converged
        assert np.allclose(ours.x, reference, atol=1e-8)

    def test_residual_decreases(self):
        k, f = self._system()
        loose = conjugate_gradient(k, f, tol=1e-2, max_iterations=500)
        tight = conjugate_gradient(k, f, tol=1e-10, max_iterations=500)
        assert tight.residual_norm < loose.residual_norm

    def test_iteration_cap(self):
        k, f = self._system(5)
        r = conjugate_gradient(k, f, tol=1e-30, max_iterations=3)
        assert r.iterations == 3
        assert not r.converged

    def test_zero_rhs(self):
        k, _ = self._system()
        r = conjugate_gradient(k, np.zeros(k.n_rows))
        assert r.converged
        assert np.allclose(r.x, 0.0)

    def test_flop_accounting(self):
        assert cg_flops(nnz=100, n=10, iterations=5) == 5 * (200 + 100)

    def test_shape_validation(self):
        k, f = self._system()
        with pytest.raises(ValueError):
            conjugate_gradient(k, f[:-1])

    def test_non_square_rejected(self):
        m = CSRMatrix.from_coo(
            2, 3, np.array([0]), np.array([0]), np.array([1.0])
        )
        with pytest.raises(ValueError):
            conjugate_gradient(m, np.zeros(2))


class TestWorkload:
    def test_from_matrix_gb(self):
        w = MiniFE.from_matrix_gb(7.2)
        assert w.matrix_bytes == pytest.approx(7.2e9, rel=0.1)

    def test_profile_phases(self):
        prof = MiniFE(nx=8).profile()
        names = [p.name for p in prof.phases]
        assert names == ["spmv-stream", "spmv-gather", "vector-ops"]
        assert prof.phases[0].pattern is AccessPattern.SEQUENTIAL
        assert prof.phases[1].pattern is AccessPattern.RANDOM

    def test_spmv_dominates_traffic(self):
        prof = MiniFE(nx=20).profile()
        assert prof.dominant_pattern is AccessPattern.SEQUENTIAL

    def test_operations_are_cg_flops(self):
        w = MiniFE(nx=8, cg_iterations=100)
        assert w.operations == cg_flops(w.nnz, w.n_rows, 100)

    def test_execute_verifies(self):
        r = MiniFE(nx=5).execute()
        assert r.verified
        assert r.details["residual"] < 1e-6

    def test_execute_nnz_bounded_by_formula(self):
        """The solved system drops boundary couplings, so its nnz is below
        the full-stiffness formula the profile uses."""
        w = MiniFE(nx=5)
        solved_nnz = w.execute().details["nnz"]
        assert 0 < solved_nnz <= w.nnz
