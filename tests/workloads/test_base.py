"""Workload base-class behaviour."""

import pytest

from repro.core.configs import ConfigName
from repro.workloads import GUPS, MiniFE, StreamBenchmark


class TestMetric:
    def test_metric_applies_calibration(self, runner):
        w = GUPS(log2_entries=20)
        record = runner.run(w, ConfigName.DRAM, 64)
        assert record.run_result is not None
        raw_rate = record.run_result.rate_per_s(w.operations)
        assert record.metric == pytest.approx(raw_rate * GUPS.calibration)

    def test_calibration_is_configuration_independent(self, runner):
        """The absolute-scale scalar must cancel in every comparison."""
        w = MiniFE.from_matrix_gb(3.6)
        hbm = runner.run(w, ConfigName.HBM, 64)
        dram = runner.run(w, ConfigName.DRAM, 64)
        assert hbm.run_result is not None and dram.run_result is not None
        metric_ratio = hbm.metric / dram.metric
        time_ratio = dram.run_result.time_ns / hbm.run_result.time_ns
        assert metric_ratio == pytest.approx(time_ratio)


class TestDescribe:
    def test_describe_mentions_identity(self):
        text = MiniFE.from_matrix_gb(3.6).describe()
        assert "MiniFE" in text
        assert "Sequential" in text
        assert "GB" in text

    def test_default_params(self):
        assert "footprint_bytes" in StreamBenchmark(size_bytes=2400).params() or (
            "size_bytes" in StreamBenchmark(size_bytes=2400).params()
        )

    def test_default_check_runnable_is_permissive(self):
        # Base class: everything runs, including 256 threads.
        GUPS(log2_entries=10).check_runnable(256)
