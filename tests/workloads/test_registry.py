"""Registry / Table I tests."""

import pytest

from repro.workloads.registry import FROM_GB, WORKLOADS, get_workload, table1_rows


class TestRegistry:
    def test_all_workloads_present(self):
        assert set(WORKLOADS) == {
            "dgemm", "minife", "gups", "graph500", "xsbench",
            "stream", "tinymembench",
        }

    def test_lookup_case_insensitive(self):
        assert get_workload("DGEMM") is WORKLOADS["dgemm"]

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="available"):
            get_workload("hpl")

    def test_from_gb_covers_applications(self):
        assert set(FROM_GB) == {"dgemm", "minife", "gups", "graph500", "xsbench"}

    def test_from_gb_constructors_work(self):
        for name, factory in FROM_GB.items():
            w = factory(2.0)
            assert w.footprint_bytes > 0


class TestTable1:
    def test_rows_match_paper(self):
        rows = table1_rows()
        assert rows == [
            ("DGEMM", "Scientific", "Sequential", "24 GB"),
            ("MiniFE", "Scientific", "Sequential", "30 GB"),
            ("GUPS", "Data analytics", "Random", "32 GB"),
            ("Graph500", "Data analytics", "Random", "35 GB"),
            ("XSBench", "Scientific", "Random", "90 GB"),
        ]


class TestTable1Scales:
    def test_max_scale_constructible(self):
        """Table I's 'Max. Scale' column: the from-GB constructors reach
        each application's stated maximum within ~25%."""
        from repro.workloads.registry import FROM_GB, WORKLOADS

        for name, factory in FROM_GB.items():
            scale = WORKLOADS[name].spec.max_scale_gb
            workload = factory(scale)
            assert workload.footprint_bytes == pytest.approx(
                scale * 1e9, rel=0.25
            )
