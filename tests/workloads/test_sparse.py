"""CSR substrate tests (including hypothesis invariants)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.common.sparse import CSRMatrix


def coo_strategy(max_dim=12, max_nnz=60):
    return st.integers(min_value=1, max_value=max_dim).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                    st.floats(min_value=-10, max_value=10, allow_nan=False),
                ),
                max_size=max_nnz,
            ),
        )
    )


class TestConstruction:
    def test_from_coo_basic(self):
        m = CSRMatrix.from_coo(
            2, 3, np.array([0, 1, 1]), np.array([2, 0, 1]), np.array([1.0, 2.0, 3.0])
        )
        assert m.nnz == 3
        dense = m.to_dense()
        assert dense[0, 2] == 1.0
        assert dense[1, 0] == 2.0

    def test_duplicates_summed(self):
        m = CSRMatrix.from_coo(
            1, 1, np.array([0, 0]), np.array([0, 0]), np.array([1.0, 2.0])
        )
        assert m.nnz == 1
        assert m.to_dense()[0, 0] == 3.0

    def test_pattern_duplicates_collapsed(self):
        m = CSRMatrix.from_coo(2, 2, np.array([0, 0, 1]), np.array([1, 1, 0]))
        assert m.nnz == 2
        assert m.data is None

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            CSRMatrix.from_coo(2, 2, np.array([2]), np.array([0]))
        with pytest.raises(ValueError):
            CSRMatrix.from_coo(2, 2, np.array([0]), np.array([-1]))

    def test_indptr_validation(self):
        with pytest.raises(ValueError):
            CSRMatrix(2, 2, np.array([0, 1]), np.array([0]))  # short indptr
        with pytest.raises(ValueError):
            CSRMatrix(2, 2, np.array([0, 2, 1]), np.array([0, 1]))  # decreasing

    def test_empty_matrix(self):
        m = CSRMatrix.from_coo(3, 3, np.array([], dtype=int), np.array([], dtype=int))
        assert m.nnz == 0
        assert (m.to_dense() == 0).all()


class TestMatvec:
    def test_matches_dense(self):
        rng = np.random.default_rng(1)
        rows = rng.integers(0, 6, 30)
        cols = rng.integers(0, 6, 30)
        vals = rng.standard_normal(30)
        m = CSRMatrix.from_coo(6, 6, rows, cols, vals)
        x = rng.standard_normal(6)
        assert np.allclose(m.matvec(x), m.to_dense() @ x)

    def test_empty_rows_zero(self):
        m = CSRMatrix.from_coo(4, 4, np.array([1]), np.array([1]), np.array([5.0]))
        y = m.matvec(np.ones(4))
        assert y[0] == 0.0 and y[2] == 0.0 and y[3] == 0.0
        assert y[1] == 5.0

    def test_pattern_spmv(self):
        m = CSRMatrix.from_coo(2, 3, np.array([0, 0, 1]), np.array([0, 2, 1]))
        y = m.spmv_pattern(np.array([1.0, 2.0, 3.0]))
        assert np.allclose(y, [4.0, 2.0])

    def test_pattern_matvec_rejected(self):
        m = CSRMatrix.from_coo(1, 1, np.array([0]), np.array([0]))
        with pytest.raises(ValueError):
            m.matvec(np.ones(1))

    def test_shape_checked(self):
        m = CSRMatrix.from_coo(2, 3, np.array([0]), np.array([0]), np.array([1.0]))
        with pytest.raises(ValueError):
            m.matvec(np.ones(2))

    @given(coo_strategy())
    @settings(max_examples=40, deadline=None)
    def test_matvec_matches_dense_property(self, data):
        n, triples = data
        if triples:
            rows, cols, vals = map(np.array, zip(*triples))
        else:
            rows = cols = np.array([], dtype=int)
            vals = np.array([])
        m = CSRMatrix.from_coo(n, n, rows, cols, vals)
        x = np.linspace(-1, 1, n)
        assert np.allclose(m.matvec(x), m.to_dense() @ x)


class TestStructure:
    def test_row_access(self):
        m = CSRMatrix.from_coo(
            2, 4, np.array([0, 0]), np.array([1, 3]), np.array([1.0, 2.0])
        )
        cols, vals = m.row(0)
        assert list(cols) == [1, 3]
        assert list(vals) == [1.0, 2.0]
        with pytest.raises(IndexError):
            m.row(2)

    def test_row_degrees(self):
        m = CSRMatrix.from_coo(3, 3, np.array([0, 0, 2]), np.array([0, 1, 2]))
        assert list(m.row_degrees()) == [2, 0, 1]

    def test_memory_bytes(self):
        m = CSRMatrix.from_coo(
            2, 2, np.array([0]), np.array([1]), np.array([1.0])
        )
        assert m.memory_bytes() == m.indptr.nbytes + m.indices.nbytes + 8

    def test_transpose(self):
        rng = np.random.default_rng(2)
        m = CSRMatrix.from_coo(
            4, 5, rng.integers(0, 4, 10), rng.integers(0, 5, 10),
            rng.standard_normal(10),
        )
        assert np.allclose(m.transpose().to_dense(), m.to_dense().T)

    @given(coo_strategy())
    @settings(max_examples=30, deadline=None)
    def test_transpose_involution(self, data):
        n, triples = data
        if triples:
            rows, cols, vals = map(np.array, zip(*triples))
        else:
            rows = cols = np.array([], dtype=int)
            vals = np.array([])
        m = CSRMatrix.from_coo(n, n, rows, cols, vals)
        assert np.allclose(m.transpose().transpose().to_dense(), m.to_dense())

    def test_rows_sorted_within_row(self):
        rng = np.random.default_rng(3)
        m = CSRMatrix.from_coo(
            5, 5, rng.integers(0, 5, 40), rng.integers(0, 5, 40)
        )
        for i in range(5):
            cols, _ = m.row(i)
            assert (np.diff(cols) > 0).all()
