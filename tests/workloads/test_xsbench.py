"""XSBench tests: grids, lookups, workload."""

import numpy as np
import pytest

from repro.engine.profilephase import AccessPattern
from repro.util.prng import make_rng
from repro.workloads.xsbench.grids import (
    N_XS,
    XSBenchParams,
    build_nuclide_grids,
    build_unionized_grid,
)
from repro.workloads.xsbench.lookup import macro_xs_direct, macro_xs_unionized
from repro.workloads.xsbench.workload import XSBench


@pytest.fixture(scope="module")
def small_setup():
    params = XSBenchParams(n_nuclides=7, n_gridpoints=40, n_lookups=500)
    grids = build_nuclide_grids(params, seed=11)
    union = build_unionized_grid(grids)
    return params, grids, union


class TestParams:
    def test_union_points(self):
        p = XSBenchParams(n_nuclides=10, n_gridpoints=100, n_lookups=1)
        assert p.union_points == 1000

    def test_footprint_scales_with_gridpoints(self):
        small = XSBenchParams(n_gridpoints=100)
        large = XSBenchParams(n_gridpoints=200)
        assert large.footprint_bytes == pytest.approx(
            2 * small.footprint_bytes, rel=1e-6
        )

    def test_from_problem_gb(self):
        p = XSBenchParams.from_problem_gb(5.6)
        assert p.footprint_bytes == pytest.approx(5.6e9, rel=0.01)

    def test_index_table_dominates(self):
        """The union index table (4 B x nuclides per union point) is the
        memory hog, as in the real benchmark."""
        p = XSBenchParams()
        index_bytes = p.union_points * 4 * p.n_nuclides
        assert index_bytes / p.footprint_bytes > 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            XSBenchParams(n_nuclides=0)


class TestGrids:
    def test_energies_ascending(self, small_setup):
        _, grids, _ = small_setup
        assert (np.diff(grids.energies, axis=1) > 0).all()

    def test_union_sorted_and_complete(self, small_setup):
        params, grids, union = small_setup
        assert union.n_union == params.union_points
        assert (np.diff(union.union_energies) >= 0).all()

    def test_index_brackets_are_valid(self, small_setup):
        params, grids, union = small_setup
        assert union.index.min() >= 0
        assert union.index.max() <= params.n_gridpoints - 2

    def test_index_bracket_property(self, small_setup):
        """energies[n, index[u, n]] <= union[u] (or clamped at 0)."""
        _, grids, union = small_setup
        for nuc in range(grids.n_nuclides):
            j = union.index[:, nuc].astype(int)
            e = grids.energies[nuc]
            ok = (e[j] <= union.union_energies + 1e-15) | (j == 0)
            assert ok.all()


class TestLookups:
    def test_unionized_matches_direct(self, small_setup):
        params, grids, union = small_setup
        rng = make_rng(3, "test-lookups")
        lo = grids.energies[:, 0].max()
        hi = grids.energies[:, -1].min()
        energy = rng.uniform(lo, hi, 200)
        conc = rng.random(params.n_nuclides)
        fast = macro_xs_unionized(grids, union, energy, conc)
        ref = macro_xs_direct(grids, energy, conc)
        assert fast.shape == (200, N_XS)
        assert np.allclose(fast, ref, rtol=1e-12, atol=1e-12)

    def test_interpolation_exact_at_gridpoints(self, small_setup):
        params, grids, union = small_setup
        conc = np.zeros(params.n_nuclides)
        conc[0] = 1.0
        # Energies exactly on nuclide 0's interior grid points.
        energy = grids.energies[0, 1:-1].copy()
        got = macro_xs_direct(grids, energy, conc)
        assert np.allclose(got, grids.xs[0, 1:-1], rtol=1e-10)

    def test_concentration_linearity(self, small_setup):
        params, grids, union = small_setup
        rng = make_rng(5, "lin")
        energy = rng.uniform(0.3, 0.6, 50)
        c1 = rng.random(params.n_nuclides)
        c2 = rng.random(params.n_nuclides)
        sum_of = macro_xs_direct(grids, energy, c1) + macro_xs_direct(
            grids, energy, c2
        )
        of_sum = macro_xs_direct(grids, energy, c1 + c2)
        assert np.allclose(sum_of, of_sum, rtol=1e-12)


class TestWorkload:
    def test_random_pattern(self):
        assert (
            XSBench.small().profile().phases[0].pattern is AccessPattern.RANDOM
        )

    def test_accesses_per_lookup(self):
        w = XSBench.small(n_nuclides=100)
        assert w.accesses_per_lookup > 100

    def test_from_problem_gb(self):
        w = XSBench.from_problem_gb(90.0)
        assert w.footprint_bytes == pytest.approx(90e9, rel=0.01)

    def test_execute_cross_validates(self):
        r = XSBench.small().execute(seed=4)
        assert r.verified
        assert r.details["max_abs_diff"] == 0.0
