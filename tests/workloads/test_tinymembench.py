"""TinyMemBench workload tests (Fig. 3's model)."""

import pytest

from repro.engine.perfmodel import PerformanceModel
from repro.engine.placement import Location
from repro.memory.modes import MCDRAMConfig, MemorySystem
from repro.util.units import GiB, KiB, MiB
from repro.workloads.tinymembench import TinyMemBench, dual_contention_ns


@pytest.fixture()
def model(machine):
    return PerformanceModel(machine, MemorySystem(MCDRAMConfig.flat()))


class TestConstruction:
    def test_lines(self):
        t = TinyMemBench(block_bytes=128 * KiB)
        assert t.n_lines == 2048

    def test_chain_count_checked(self):
        with pytest.raises(ValueError):
            TinyMemBench(block_bytes=KiB, chains=3)

    def test_minimum_block(self):
        with pytest.raises(ValueError):
            TinyMemBench(block_bytes=64)


class TestLatencyTiers:
    """The paper's three Fig. 3 tiers."""

    def test_l2_tier_below_1mb(self, model):
        for block in (128 * KiB, 512 * KiB, 1 * MiB):
            lat = TinyMemBench(block_bytes=block).model_latency_ns(
                model, Location.DRAM
            )
            assert lat == pytest.approx(10.0, abs=1.0)

    def test_mid_tier_about_200ns(self, model):
        for block in (8 * MiB, 32 * MiB, 64 * MiB):
            lat = TinyMemBench(block_bytes=block).model_latency_ns(
                model, Location.DRAM
            )
            assert 150 <= lat <= 260

    def test_growth_beyond_128mb(self, model):
        lat_64m = TinyMemBench(block_bytes=64 * MiB).model_latency_ns(
            model, Location.DRAM
        )
        lat_1g = TinyMemBench(block_bytes=1 * GiB).model_latency_ns(
            model, Location.DRAM
        )
        assert lat_1g > lat_64m + 150

    def test_dram_faster_than_hbm_everywhere_above_l2(self, model):
        for block in (2 * MiB, 16 * MiB, 256 * MiB, 1 * GiB):
            t = TinyMemBench(block_bytes=block)
            d = t.model_latency_ns(model, Location.DRAM)
            h = t.model_latency_ns(model, Location.HBM)
            assert 0.10 <= h / d - 1 <= 0.25

    def test_gap_peaks_just_above_l2(self, model):
        def gap(block):
            t = TinyMemBench(block_bytes=block)
            return t.model_latency_ns(model, Location.HBM) / t.model_latency_ns(
                model, Location.DRAM
            )

        assert gap(2 * MiB) > gap(64 * MiB) > gap(512 * MiB)

    def test_single_chain_cheaper(self, model):
        dual = TinyMemBench(block_bytes=16 * MiB, chains=2)
        single = TinyMemBench(block_bytes=16 * MiB, chains=1)
        assert single.model_latency_ns(model, Location.DRAM) < (
            dual.model_latency_ns(model, Location.DRAM)
        )


class TestContention:
    def test_ddr_flat(self):
        assert dual_contention_ns("DDR4", MiB) == dual_contention_ns("DDR4", GiB)

    def test_mcdram_decays(self):
        assert dual_contention_ns("MCDRAM", MiB) > dual_contention_ns(
            "MCDRAM", GiB
        )

    def test_unknown_device(self):
        with pytest.raises(ValueError):
            dual_contention_ns("HBM3", MiB)


class TestExecute:
    def test_full_walk_visits_every_line(self):
        t = TinyMemBench(block_bytes=64 * 256, steps=256)
        result = t.execute(seed=0)
        assert result.verified
        assert result.details["lines_visited"] == 256

    def test_dual_chains_count_double(self):
        t = TinyMemBench(block_bytes=64 * 128, steps=64, chains=2)
        assert t.execute(seed=1).operations == 128

    def test_partial_walk_verified_loosely(self):
        t = TinyMemBench(block_bytes=64 * 1024, steps=10, chains=1)
        assert t.execute(seed=2).verified

    def test_deterministic(self):
        t = TinyMemBench(block_bytes=64 * 128, steps=128)
        a = t.execute(seed=5)
        b = t.execute(seed=5)
        assert a.details == b.details
