"""STREAM workload tests."""

import pytest

from repro.engine.profilephase import AccessPattern
from repro.workloads.stream import ARRAYS, StreamBenchmark, StreamKernel


class TestSizing:
    def test_footprint_is_three_arrays(self):
        s = StreamBenchmark(size_bytes=3 * 8 * 1000)
        assert s.n_elements == 1000
        assert s.footprint_bytes == 24_000

    def test_triad_counts_footprint_per_iteration(self):
        """STREAM triad counts 3 x 8 x N bytes — exactly the footprint —
        so the paper's size axis equals per-iteration traffic."""
        s = StreamBenchmark(size_bytes=3 * 8 * 1000, ntimes=1)
        assert s.operations == s.footprint_bytes

    def test_copy_counts_two_arrays(self):
        s = StreamBenchmark(
            size_bytes=3 * 8 * 1000, ntimes=1, kernel=StreamKernel.COPY
        )
        assert s.operations == 2 * 8 * 1000

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            StreamBenchmark(size_bytes=8)


class TestProfile:
    def test_sequential_pattern(self):
        prof = StreamBenchmark(size_bytes=24_000).profile()
        assert prof.phases[0].pattern is AccessPattern.SEQUENTIAL

    def test_traffic_scales_with_ntimes(self):
        one = StreamBenchmark(size_bytes=24_000, ntimes=1).profile()
        ten = StreamBenchmark(size_bytes=24_000, ntimes=10).profile()
        assert ten.phases[0].traffic_bytes == 10 * one.phases[0].traffic_bytes

    def test_triad_flops(self):
        prof = StreamBenchmark(size_bytes=24_000, ntimes=1).profile()
        assert prof.phases[0].flops == 2.0 * 1000

    def test_write_fraction(self):
        prof = StreamBenchmark(size_bytes=24_000).profile()
        assert prof.phases[0].write_fraction == pytest.approx(1 / 3)


class TestExecute:
    def test_self_check_passes(self):
        result = StreamBenchmark(size_bytes=3 * 8 * 500, ntimes=3).execute()
        assert result.verified

    def test_many_iterations_stable(self):
        assert StreamBenchmark(size_bytes=3 * 8 * 64, ntimes=25).execute().verified

    def test_operations_reported(self):
        s = StreamBenchmark(size_bytes=3 * 8 * 100, ntimes=2)
        assert s.execute().operations == s.operations
