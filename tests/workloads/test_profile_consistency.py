"""Cross-checks between the workloads' two faces.

The profiled face predicts from structural formulas; the functional face
builds the actual data structures.  These tests confirm the formulas
describe the structures — the foundation of the claim that the
performance engine's inputs come from the algorithms, not hand-tuning.
"""

import numpy as np
import pytest

from repro.workloads import (
    DGEMM,
    GUPS,
    Graph500,
    MiniFE,
    StreamBenchmark,
    TinyMemBench,
    XSBench,
)
from repro.workloads.graph500.bfs import build_adjacency
from repro.workloads.graph500.kronecker import kronecker_edges
from repro.workloads.minife.assembly import assemble_stiffness
from repro.workloads.xsbench.grids import build_nuclide_grids, build_unionized_grid

ALL_SMALL = [
    StreamBenchmark(size_bytes=3 * 8 * 1024),
    TinyMemBench(block_bytes=64 * 256),
    DGEMM(n=64),
    GUPS(log2_entries=10),
    MiniFE(nx=6),
    Graph500(scale=8),
    XSBench.small(),
]


class TestProfileInvariants:
    @pytest.mark.parametrize("workload", ALL_SMALL, ids=lambda w: w.spec.name)
    def test_profile_footprint_matches_workload(self, workload):
        assert workload.profile().footprint_bytes <= workload.footprint_bytes
        # The dominant phase must cover a meaningful share of the footprint.
        assert workload.profile().footprint_bytes >= 0.1 * workload.footprint_bytes

    @pytest.mark.parametrize("workload", ALL_SMALL, ids=lambda w: w.spec.name)
    def test_profile_traffic_positive(self, workload):
        assert workload.profile().total_traffic_bytes > 0

    @pytest.mark.parametrize("workload", ALL_SMALL, ids=lambda w: w.spec.name)
    def test_profile_deterministic(self, workload):
        a = workload.profile()
        b = workload.profile()
        assert a == b

    @pytest.mark.parametrize("workload", ALL_SMALL, ids=lambda w: w.spec.name)
    def test_pattern_matches_table1(self, workload):
        dominant = workload.profile().dominant_pattern.value
        assert dominant == workload.spec.pattern.lower()


class TestStructuralFormulas:
    def test_minife_nnz_formula_exact(self):
        for nx in (3, 5, 8):
            assembled = assemble_stiffness(MiniFE(nx=nx).mesh)
            assert assembled.nnz == MiniFE(nx=nx).nnz

    def test_graph500_csr_entries_bounded_by_model(self):
        """The profile charges 2 entries per input edge; real CSR loses
        self-loops and duplicates, so it must be below but commensurate."""
        w = Graph500(scale=9)
        edges = kronecker_edges(w.params_kron, seed=5)
        graph = build_adjacency(edges, w.n_vertices)
        assert graph.nnz <= w.directed_entries
        assert graph.nnz >= 0.5 * w.directed_entries

    def test_xsbench_union_size_formula(self):
        w = XSBench.small(n_nuclides=9, n_gridpoints=33)
        grids = build_nuclide_grids(w.xs_params, seed=1)
        union = build_unionized_grid(grids)
        assert union.n_union == w.xs_params.union_points
        assert union.index.nbytes == union.n_union * 9 * 4

    def test_gups_traffic_formula(self):
        w = GUPS(log2_entries=10, updates=500)
        phase = w.profile().phases[0]
        assert phase.traffic_bytes == 2 * 8 * 500
        assert phase.accesses == 1000

    def test_stream_triad_traffic_is_three_arrays(self):
        w = StreamBenchmark(size_bytes=3 * 8 * 1000, ntimes=1)
        assert w.profile().phases[0].traffic_bytes == w.footprint_bytes

    def test_dgemm_traffic_scales_cubically(self):
        """Doubling n multiplies traffic ~8x (the n^2 C-matrix term keeps
        the ratio slightly below 8 at small n)."""
        t1 = DGEMM(n=1000).profile().phases[0].traffic_bytes
        t2 = DGEMM(n=2000).profile().phases[0].traffic_bytes
        assert 7.5 <= t2 / t1 <= 8.0
