"""Graph500 tests: generator, BFS (vs networkx), validation, workload."""

import networkx as nx
import numpy as np
import pytest

from repro.engine.profilephase import AccessPattern
from repro.workloads.graph500.bfs import BFSResult, bfs_csr, build_adjacency
from repro.workloads.graph500.kronecker import KroneckerParams, kronecker_edges
from repro.workloads.graph500.validate import validate_bfs
from repro.workloads.graph500.workload import Graph500


@pytest.fixture(scope="module")
def small_graph():
    params = KroneckerParams(scale=8, edgefactor=8)
    edges = kronecker_edges(params, seed=42)
    return edges, build_adjacency(edges, params.n_vertices)


class TestKronecker:
    def test_shape_and_range(self):
        params = KroneckerParams(scale=6)
        edges = kronecker_edges(params, seed=0)
        assert edges.shape == (2, params.n_edges)
        assert edges.min() >= 0
        assert edges.max() < params.n_vertices

    def test_deterministic(self):
        p = KroneckerParams(scale=6)
        a = kronecker_edges(p, seed=1)
        b = kronecker_edges(p, seed=1)
        assert (a == b).all()

    def test_seed_changes_graph(self):
        p = KroneckerParams(scale=6)
        assert not (kronecker_edges(p, seed=1) == kronecker_edges(p, seed=2)).all()

    def test_skewed_degree_distribution(self):
        """R-MAT graphs are heavy-tailed: the max degree far exceeds the
        mean (this is what makes Graph500 locality-hostile)."""
        p = KroneckerParams(scale=10)
        g = build_adjacency(kronecker_edges(p, seed=3), p.n_vertices)
        degrees = g.row_degrees()
        assert degrees.max() > 5 * degrees.mean()

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            KroneckerParams(scale=4, a=0.6, b=0.3, c=0.2)


class TestAdjacency:
    def test_symmetrized(self, small_graph):
        _, g = small_graph
        dense = g.to_dense()
        assert (dense == dense.T).all()

    def test_no_self_loops(self, small_graph):
        _, g = small_graph
        assert np.trace(g.to_dense()) == 0

    def test_deduplicated(self, small_graph):
        _, g = small_graph
        assert g.to_dense().max() == 1.0

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            build_adjacency(np.zeros((3, 4), dtype=np.int64), 4)


class TestBFS:
    def test_matches_networkx_levels(self, small_graph):
        edges, g = small_graph
        root = int(np.flatnonzero(g.row_degrees() > 0)[0])
        result = bfs_csr(g, root)
        nxg = nx.Graph()
        nxg.add_nodes_from(range(g.n_rows))
        nxg.add_edges_from(edges.T.tolist())
        nxg.remove_edges_from(nx.selfloop_edges(nxg))
        expected = nx.single_source_shortest_path_length(nxg, root)
        for v, lvl in expected.items():
            assert result.level[v] == lvl
        assert result.vertices_visited == len(expected)

    def test_root_properties(self, small_graph):
        _, g = small_graph
        root = int(np.flatnonzero(g.row_degrees() > 0)[0])
        r = bfs_csr(g, root)
        assert r.parent[root] == root
        assert r.level[root] == 0

    def test_unreached_marked(self):
        # Two disconnected edges: 0-1, 2-3.
        g = build_adjacency(np.array([[0, 2], [1, 3]]), 4)
        r = bfs_csr(g, 0)
        assert r.parent[2] == -1 and r.parent[3] == -1
        assert r.vertices_visited == 2

    def test_edges_traversed_counts_scans(self, small_graph):
        _, g = small_graph
        root = int(np.flatnonzero(g.row_degrees() > 0)[0])
        r = bfs_csr(g, root)
        assert 0 < r.edges_traversed <= g.nnz

    def test_isolated_root(self):
        g = build_adjacency(np.array([[0], [1]]), 4)
        r = bfs_csr(g, 3)
        assert r.vertices_visited == 1

    def test_root_range_checked(self, small_graph):
        _, g = small_graph
        with pytest.raises(ValueError):
            bfs_csr(g, g.n_rows)


class TestValidation:
    def test_valid_result_passes(self, small_graph):
        _, g = small_graph
        root = int(np.flatnonzero(g.row_degrees() > 0)[0])
        ok, errors = validate_bfs(g, bfs_csr(g, root))
        assert ok, errors

    def test_corrupted_parent_detected(self, small_graph):
        _, g = small_graph
        root = int(np.flatnonzero(g.row_degrees() > 0)[0])
        r = bfs_csr(g, root)
        reached = np.flatnonzero(r.parent >= 0)
        victim = int(reached[reached != root][0])
        bad_parent = r.parent.copy()
        # Point the victim at a non-adjacent vertex (itself is never
        # adjacent: no self loops).
        bad_parent[victim] = victim
        ok, errors = validate_bfs(
            g, BFSResult(root, bad_parent, r.level, r.edges_traversed, r.levels)
        )
        assert not ok

    def test_corrupted_level_detected(self, small_graph):
        _, g = small_graph
        root = int(np.flatnonzero(g.row_degrees() > 0)[0])
        r = bfs_csr(g, root)
        bad_level = r.level.copy()
        reached = np.flatnonzero((r.parent >= 0) & (r.level > 0))
        bad_level[reached[0]] += 5
        ok, errors = validate_bfs(
            g, BFSResult(root, r.parent, bad_level, r.edges_traversed, r.levels)
        )
        assert not ok

    def test_truncated_search_detected(self, small_graph):
        """Un-visiting a vertex whose neighbours were visited must fail
        the component check."""
        _, g = small_graph
        root = int(np.flatnonzero(g.row_degrees() > 0)[0])
        r = bfs_csr(g, root)
        deepest = int(np.argmax(r.level))
        parent = r.parent.copy()
        level = r.level.copy()
        parent[deepest] = -1
        level[deepest] = -1
        ok, _ = validate_bfs(
            g, BFSResult(root, parent, level, r.edges_traversed, r.levels)
        )
        assert not ok


class TestWorkload:
    def test_from_graph_gb(self):
        w = Graph500.from_graph_gb(8.8)
        assert w.footprint_bytes >= 8.8e9
        assert Graph500(scale=w.scale - 1).footprint_bytes < 8.8e9

    def test_profile_phases(self):
        prof = Graph500(scale=20).profile()
        patterns = {p.name: p.pattern for p in prof.phases}
        assert patterns["adjacency-stream"] is AccessPattern.SEQUENTIAL
        assert patterns["visit-random"] is AccessPattern.RANDOM

    def test_teps_numerator_is_input_edges(self):
        w = Graph500(scale=20, edgefactor=16)
        assert w.operations == 16 * (1 << 20)

    def test_execute_validates_all_roots(self):
        r = Graph500(scale=7, n_roots=4).execute(seed=9)
        assert r.verified
        assert r.details["roots"] == 4
        assert r.details["errors"] == []


class TestHarmonicMeanTeps:
    def test_equal_rates(self):
        from repro.workloads.graph500.workload import harmonic_mean_teps

        assert harmonic_mean_teps([100, 100], [1.0, 1.0]) == pytest.approx(100.0)

    def test_dominated_by_slow_searches(self):
        from repro.workloads.graph500.workload import harmonic_mean_teps

        hm = harmonic_mean_teps([100, 100], [1.0, 100.0])
        assert hm < 2.1  # the slow root dominates, as the spec intends

    def test_matches_core_harmonic_mean(self):
        from repro.core.metrics import harmonic_mean
        from repro.workloads.graph500.workload import harmonic_mean_teps

        edges = [120, 80, 100]
        times = [1.2, 0.8, 0.9]
        rates = [e / t for e, t in zip(edges, times)]
        assert harmonic_mean_teps(edges, times) == pytest.approx(
            harmonic_mean(rates)
        )

    def test_validation(self):
        from repro.workloads.graph500.workload import harmonic_mean_teps

        with pytest.raises(ValueError):
            harmonic_mean_teps([1], [1.0, 2.0])
        with pytest.raises(ValueError):
            harmonic_mean_teps([], [])
        with pytest.raises(ValueError):
            harmonic_mean_teps([0], [1.0])
