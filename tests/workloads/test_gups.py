"""GUPS workload tests."""

import pytest

from repro.engine.profilephase import AccessPattern
from repro.workloads.gups import GUPS, UPDATES_PER_ENTRY


class TestSizing:
    def test_power_of_two_table(self):
        g = GUPS(log2_entries=20)
        assert g.n_entries == 1 << 20
        assert g.footprint_bytes == 8 << 20

    def test_default_updates(self):
        g = GUPS(log2_entries=10)
        assert g.n_updates == UPDATES_PER_ENTRY * 1024

    def test_explicit_updates(self):
        assert GUPS(log2_entries=10, updates=100).n_updates == 100

    def test_from_table_gb_uses_gib_powers_of_two(self):
        g = GUPS.from_table_gb(1.0)
        assert g.footprint_bytes == 1 << 30
        assert GUPS.from_table_gb(32.0).footprint_bytes == 32 << 30

    def test_32_gib_table_does_not_fit_hbm(self):
        assert GUPS.from_table_gb(32.0).footprint_bytes > 16 << 30

    def test_tiny_table_rejected(self):
        with pytest.raises(ValueError):
            GUPS.from_table_gb(1e-9)


class TestProfile:
    def test_random_pattern(self):
        prof = GUPS(log2_entries=10).profile()
        assert prof.phases[0].pattern is AccessPattern.RANDOM

    def test_two_accesses_per_update(self):
        g = GUPS(log2_entries=10, updates=100)
        assert g.profile().phases[0].accesses == 200.0

    def test_write_heavy(self):
        assert GUPS(log2_entries=10).profile().phases[0].write_fraction == 0.5


class TestExecute:
    def test_xor_involution_verifies(self):
        assert GUPS(log2_entries=8).execute(seed=0).verified

    def test_larger_batch_path(self):
        # More updates than one batch (1024), exercising the loop.
        assert GUPS(log2_entries=9, updates=3000).execute(seed=1).verified

    def test_deterministic(self):
        a = GUPS(log2_entries=8).execute(seed=7)
        b = GUPS(log2_entries=8).execute(seed=7)
        assert a.verified and b.verified
        assert a.operations == b.operations
