"""DGEMM workload tests."""

import numpy as np
import pytest

from repro.engine.profilephase import AccessPattern
from repro.util.prng import make_rng
from repro.workloads.dgemm import DGEMM, WorkloadFailure


class TestSizing:
    def test_footprint(self):
        assert DGEMM(n=100).footprint_bytes == 3 * 100 * 100 * 8

    def test_from_array_gb(self):
        d = DGEMM.from_array_gb(24.0)
        assert d.footprint_bytes == pytest.approx(24e9, rel=0.01)

    def test_flops(self):
        assert DGEMM(n=10).flops == 2000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DGEMM(n=0)


class TestProfile:
    def test_sequential(self):
        prof = DGEMM(n=100).profile()
        assert prof.phases[0].pattern is AccessPattern.SEQUENTIAL

    def test_arithmetic_intensity_near_block_over_8(self):
        prof = DGEMM(n=2000).profile()
        assert prof.phases[0].arithmetic_intensity == pytest.approx(4.0, rel=0.05)

    def test_footprint_matches(self):
        d = DGEMM(n=500)
        assert d.profile().footprint_bytes == d.footprint_bytes


class TestFailureMode:
    def test_256_threads_fails(self):
        with pytest.raises(WorkloadFailure, match="footnote"):
            DGEMM(n=100).check_runnable(256)

    @pytest.mark.parametrize("threads", [64, 128, 192])
    def test_other_counts_fine(self, threads):
        DGEMM(n=100).check_runnable(threads)


class TestBlockedMatmul:
    def test_matches_numpy(self):
        rng = make_rng(0, "t")
        a = rng.standard_normal((70, 50))
        b = rng.standard_normal((50, 90))
        c = DGEMM.blocked_matmul(a, b, block=16)
        assert np.allclose(c, a @ b)

    def test_block_larger_than_matrix(self):
        rng = make_rng(1, "t")
        a = rng.standard_normal((5, 5))
        b = rng.standard_normal((5, 5))
        assert np.allclose(DGEMM.blocked_matmul(a, b, block=64), a @ b)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            DGEMM.blocked_matmul(np.ones((2, 3)), np.ones((2, 3)))

    def test_block_validation(self):
        with pytest.raises(ValueError):
            DGEMM.blocked_matmul(np.ones((2, 2)), np.ones((2, 2)), block=0)


class TestExecute:
    def test_verified(self):
        result = DGEMM(n=48).execute(seed=3)
        assert result.verified
        assert result.details["max_abs_err"] < 1e-8

    def test_operations(self):
        assert DGEMM(n=10).execute().operations == 2000.0
