"""Smoke tests: every shipped example must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(example):
    result = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_all_six_examples_present():
    assert len(EXAMPLES) == 6
    assert {p.stem for p in EXAMPLES} >= {
        "quickstart",
        "graph_analytics",
        "capacity_planning",
        "finegrained_placement",
        "memory_mode_study",
        "energy_study",
    }
