"""End-to-end determinism: the whole study must be a pure function of the
seed and the models (no wall-clock, no hidden state)."""

import pytest

from repro.core.report import generate_report
from repro.core.runner import ExperimentRunner
from repro.figures.fig4 import generate_b
from repro.workloads import Graph500, MiniFE


class TestDeterminism:
    def test_report_identical_across_runs(self, runner):
        first = generate_report(runner).render()
        second = generate_report(runner).render()
        assert first == second

    def test_fresh_runner_identical(self, machine):
        a = generate_b(ExperimentRunner(machine)).data
        b = generate_b(ExperimentRunner(machine)).data
        assert a == b

    def test_functional_runs_seeded(self):
        a = Graph500(scale=7, n_roots=3).execute(seed=99)
        b = Graph500(scale=7, n_roots=3).execute(seed=99)
        assert a.details["edges_traversed"] == b.details["edges_traversed"]

    def test_runner_has_no_cross_run_state(self, runner):
        w = MiniFE.from_matrix_gb(3.6)
        from repro.core.configs import ConfigName

        first = runner.run(w, ConfigName.HBM, 64).metric
        for _ in range(3):
            assert runner.run(w, ConfigName.HBM, 64).metric == first
