"""Trace-driven validation: the analytic cache-model formulas must match
the functional simulator at miniature scale."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.traces import (
    drive_cache,
    miniature_mcdram_cache,
    random_trace,
    sequential_trace,
    strided_trace,
    zipfian_trace,
)
from repro.memory.dram import ddr4_archer
from repro.memory.mcdram import mcdram_archer
from repro.memory.mcdram_cache import MCDRAMCacheModel
from repro.util.units import CACHE_LINE


class TestGenerators:
    def test_sequential_line_aligned(self):
        trace = sequential_trace(1024, passes=2)
        assert (trace % CACHE_LINE == 0).all()
        assert len(trace) == 2 * (1024 // CACHE_LINE)

    def test_sequential_repeats(self):
        trace = sequential_trace(640, passes=3)
        per_pass = 640 // CACHE_LINE
        assert (trace[:per_pass] == trace[per_pass : 2 * per_pass]).all()

    def test_random_within_footprint(self):
        trace = random_trace(4096, 1000, seed=0)
        assert trace.min() >= 0
        assert trace.max() < 4096
        assert (trace % CACHE_LINE == 0).all()

    def test_random_deterministic(self):
        a = random_trace(4096, 100, seed=3)
        b = random_trace(4096, 100, seed=3)
        assert (a == b).all()

    def test_strided_wraps(self):
        trace = strided_trace(256, 128, 10)
        assert trace.max() < 256

    def test_zipf_skewed(self):
        trace = zipfian_trace(64 * 1024, 5000, seed=1)
        _, counts = np.unique(trace, return_counts=True)
        # The most popular line dominates a uniform share by far.
        assert counts.max() > 10 * counts.mean()

    def test_zipf_validation(self):
        with pytest.raises(ValueError):
            zipfian_trace(1024, 10, skew=0.0)

    def test_drive_warmup_validation(self):
        with pytest.raises(ValueError):
            drive_cache(miniature_mcdram_cache(), np.array([0]), warmup_fraction=1.0)


class TestStreamingValidation:
    """Streaming reuse: fits -> ~all hits after warmup; the analytic model
    assumes contiguous placement below capacity."""

    def test_fitting_stream_all_hits_steady(self):
        geometry = miniature_mcdram_cache(capacity_lines=512)
        trace = sequential_trace(256 * CACHE_LINE, passes=4)
        result = drive_cache(geometry, trace)
        assert result.steady_hit_rate == 1.0

    def test_modulo_tail_formula(self):
        """For a cyclic stream of F > C through a direct-mapped cache with
        contiguous addresses, survivors are (2C - F) lines: hit rate
        max(0, (2C-F)/F).  This is the analytic model's large-r bound."""
        capacity = 256
        geometry = miniature_mcdram_cache(capacity_lines=capacity)
        for factor in (1.25, 1.5, 2.0, 3.0):
            footprint_lines = int(capacity * factor)
            trace = sequential_trace(footprint_lines * CACHE_LINE, passes=6)
            result = drive_cache(geometry, trace, warmup_fraction=0.5)
            expected = max(0.0, (2 * capacity - footprint_lines) / footprint_lines)
            assert result.steady_hit_rate == pytest.approx(expected, abs=0.02)


class TestRandomValidation:
    """The closed form h(r) = (1/r)(1 - e^-r) for direct-mapped caches
    under uniform random access, used by
    MCDRAMCacheModel.random_hit_rate, checked against simulation."""

    @pytest.mark.parametrize("ratio", [0.25, 0.5, 1.0, 2.0, 4.0])
    def test_closed_form_matches_simulation(self, ratio):
        capacity = 1024
        geometry = miniature_mcdram_cache(capacity_lines=capacity)
        footprint_lines = int(capacity * ratio)
        trace = random_trace(
            footprint_lines * CACHE_LINE, 60_000, seed=int(ratio * 100),
            scattered=True,
        )
        simulated = drive_cache(geometry, trace, warmup_fraction=0.3)
        analytic = (1.0 / ratio) * (1.0 - math.exp(-ratio))
        assert simulated.steady_hit_rate == pytest.approx(
            min(1.0, analytic), abs=0.03
        )

    def test_model_object_agrees_with_simulation(self):
        """End-to-end: the 16 GiB MCDRAMCacheModel's prediction transfers
        to a miniature at the same footprint ratio."""
        model = MCDRAMCacheModel(mcdram_archer(), ddr4_archer())
        ratio = 1.5
        footprint = int(model.capacity_bytes * ratio)
        predicted = model.random_hit_rate(footprint)
        capacity = 512
        trace = random_trace(
            int(capacity * ratio) * CACHE_LINE, 40_000, seed=7,
            scattered=True,
        )
        simulated = drive_cache(
            miniature_mcdram_cache(capacity_lines=capacity), trace,
            warmup_fraction=0.3,
        )
        assert simulated.steady_hit_rate == pytest.approx(predicted, abs=0.03)

    @given(st.floats(min_value=0.2, max_value=4.0))
    @settings(max_examples=10, deadline=None)
    def test_closed_form_property(self, ratio):
        capacity = 256
        footprint_lines = max(1, int(capacity * ratio))
        trace = random_trace(
            footprint_lines * CACHE_LINE, 20_000,
            seed=int(ratio * 1000), scattered=True,
        )
        simulated = drive_cache(
            miniature_mcdram_cache(capacity_lines=capacity), trace,
            warmup_fraction=0.3,
        )
        # Exact finite-size form h = (S/F)(1 - (1-1/S)^F); the model's
        # (1/r)(1-e^-r) is its large-S limit.
        exact = (capacity / footprint_lines) * (
            1.0 - (1.0 - 1.0 / capacity) ** footprint_lines
        )
        assert simulated.steady_hit_rate == pytest.approx(
            min(1.0, exact), abs=0.08
        )


class TestAssociativityValidation:
    def test_associative_beats_direct_on_random(self):
        """The ablation's premise: below capacity, associativity removes
        conflict misses under random access."""
        footprint_lines = 400  # < 512 capacity
        trace = random_trace(
            footprint_lines * CACHE_LINE, 30_000, seed=2, scattered=True
        )
        direct = drive_cache(
            miniature_mcdram_cache(capacity_lines=512, associativity=1), trace
        )
        assoc = drive_cache(
            miniature_mcdram_cache(capacity_lines=512, associativity=8), trace
        )
        assert assoc.steady_hit_rate > direct.steady_hit_rate + 0.05
        # Not quite 1.0: with scattered placement a few sets exceed 8
        # resident lines even below total capacity.
        assert assoc.steady_hit_rate > 0.94

    def test_zipf_friendlier_than_uniform(self):
        """Skewed popularity caches better than uniform at the same
        footprint — why some graph workloads behave less badly than GUPS."""
        capacity = 256
        footprint = 4 * capacity * CACHE_LINE
        uniform = drive_cache(
            miniature_mcdram_cache(capacity_lines=capacity),
            random_trace(footprint, 30_000, seed=4, scattered=True),
        )
        zipf = drive_cache(
            miniature_mcdram_cache(capacity_lines=capacity),
            zipfian_trace(footprint, 30_000, seed=4),
        )
        assert zipf.steady_hit_rate > uniform.steady_hit_rate + 0.1
