"""Little's law arithmetic tests."""

import pytest
from hypothesis import given, strategies as st

from repro.engine.littles_law import (
    littles_law_bandwidth,
    required_concurrency,
    saturating_rate,
)


class TestLittlesLaw:
    def test_paper_example(self):
        """330 GB/s at 154 ns needs ~794 outstanding lines (12.4/core)."""
        needed = required_concurrency(330e9, 154.0)
        assert needed == pytest.approx(794, rel=0.01)
        assert needed / 64 == pytest.approx(12.4, rel=0.01)

    def test_dram_needs_less(self):
        """DRAM's 77 GB/s at 130.4 ns needs far fewer outstanding lines —
        why one thread per core already saturates DDR (Fig. 5)."""
        assert required_concurrency(77e9, 130.4) < 200

    def test_inverse_relationship(self):
        bw = littles_law_bandwidth(100, 154.0)
        assert required_concurrency(bw, 154.0) == pytest.approx(100)

    @given(
        st.floats(min_value=1, max_value=1e4),
        st.floats(min_value=1, max_value=1e4),
    )
    def test_round_trip_property(self, outstanding, latency):
        bw = littles_law_bandwidth(outstanding, latency)
        assert required_concurrency(bw, latency) == pytest.approx(
            outstanding, rel=1e-9
        )

    def test_zero_outstanding(self):
        assert littles_law_bandwidth(0, 100.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            littles_law_bandwidth(1, 0.0)
        with pytest.raises(ValueError):
            required_concurrency(-1, 100.0)


class TestSaturatingRate:
    def test_zero_demand(self):
        assert saturating_rate(0.0, 100.0) == 0.0

    def test_linear_at_low_demand(self):
        assert saturating_rate(1.0, 1000.0) == pytest.approx(1.0, rel=1e-3)

    def test_never_exceeds_capacity(self):
        assert saturating_rate(1e9, 100.0) <= 100.0

    def test_never_exceeds_demand(self):
        assert saturating_rate(50.0, 100.0) <= 50.0

    @given(
        st.floats(min_value=0, max_value=1e6),
        st.floats(min_value=1e-3, max_value=1e6),
    )
    def test_bounds_property(self, demand, capacity):
        rate = saturating_rate(demand, capacity)
        assert 0.0 <= rate <= min(demand, capacity) + 1e-9

    def test_monotone_in_demand(self):
        rates = [saturating_rate(d, 100.0) for d in (10, 50, 100, 500)]
        assert rates == sorted(rates)
