"""Energy model tests."""

import pytest

from repro.engine.energy import EnergyModel, EnergyParameters
from repro.engine.placement import Location, PlacementMix
from repro.engine.profilephase import AccessPattern, MemoryProfile, Phase
from repro.util.units import GB


def stream_profile(gb=4.0):
    return MemoryProfile(
        "stream",
        (
            Phase(
                "triad",
                AccessPattern.SEQUENTIAL,
                traffic_bytes=gb * GB,
                flops=1e9,
                footprint_bytes=int(gb * GB),
            ),
        ),
    )


@pytest.fixture()
def model():
    return EnergyModel()


class TestEnergyModel:
    def test_hbm_moves_bytes_cheaper(self, model, flat_model):
        prof = stream_profile()
        dram_run = flat_model.run(prof, PlacementMix.pure(Location.DRAM), 64)
        hbm_run = flat_model.run(prof, PlacementMix.pure(Location.HBM), 64)
        dram_e = model.estimate(prof, dram_run)
        hbm_e = model.estimate(prof, hbm_run)
        assert hbm_e.dynamic_memory_j < dram_e.dynamic_memory_j
        # HBM also finishes faster -> less static energy -> lower total.
        assert hbm_e.total_j < dram_e.total_j

    def test_memory_energy_magnitude(self, model, flat_model):
        """4 GB at 120 pJ/byte = 0.48 J on DDR."""
        prof = stream_profile(4.0)
        run = flat_model.run(prof, PlacementMix.pure(Location.DRAM), 64)
        estimate = model.estimate(prof, run)
        assert estimate.dynamic_memory_j == pytest.approx(0.48, rel=1e-6)

    def test_static_energy_scales_with_time(self, model, flat_model):
        prof = stream_profile()
        run = flat_model.run(prof, PlacementMix.pure(Location.DRAM), 64)
        estimate = model.estimate(prof, run)
        assert estimate.static_j == pytest.approx(215.0 * run.time_s)

    def test_compute_energy(self, model, flat_model):
        prof = stream_profile()
        run = flat_model.run(prof, PlacementMix.pure(Location.DRAM), 64)
        estimate = model.estimate(prof, run)
        assert estimate.dynamic_compute_j == pytest.approx(1e9 * 20e-12)

    def test_edp(self, model, flat_model):
        prof = stream_profile()
        run = flat_model.run(prof, PlacementMix.pure(Location.DRAM), 64)
        estimate = model.estimate(prof, run)
        assert estimate.edp(run.time_s) == pytest.approx(
            estimate.total_j * run.time_s
        )

    def test_cache_mode_pays_probe_energy(self, model, cache_model_pm):
        prof = stream_profile()
        run = cache_model_pm.run(
            prof, PlacementMix.pure(Location.DRAM_CACHED), 64
        )
        estimate = model.estimate(prof, run)
        params = EnergyParameters()
        expected = (
            prof.phases[0].traffic_bytes
            * (params.hbm_pj_per_byte + params.cache_probe_pj_per_byte)
            * 1e-12
        )
        assert estimate.dynamic_memory_j == pytest.approx(expected)

    def test_fine_grained_mapping(self, model, flat_model):
        prof = MemoryProfile(
            "two",
            (
                Phase("a", AccessPattern.SEQUENTIAL, 1 * GB, footprint_bytes=GB),
                Phase("b", AccessPattern.SEQUENTIAL, 1 * GB, footprint_bytes=GB),
            ),
        )
        mixes = {
            "a": PlacementMix.pure(Location.HBM),
            "b": PlacementMix.pure(Location.DRAM),
        }
        run = flat_model.run(prof, mixes, 64)
        estimate = model.estimate(prof, run, mixes)
        params = EnergyParameters()
        expected = (
            1 * GB * params.hbm_pj_per_byte + 1 * GB * params.dram_pj_per_byte
        ) * 1e-12
        assert estimate.dynamic_memory_j == pytest.approx(expected)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            EnergyParameters(flop_pj=-1.0)
        with pytest.raises(ValueError):
            EnergyParameters(static_watts=-5.0)

    def test_negative_edp_time_rejected(self, model, flat_model):
        prof = stream_profile()
        run = flat_model.run(prof, PlacementMix.pure(Location.DRAM), 64)
        estimate = model.estimate(prof, run)
        with pytest.raises(ValueError):
            estimate.edp(-1.0)
