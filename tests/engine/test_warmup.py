"""Deploy-time table prewarming (:mod:`repro.engine.warmup`).

The promise under test: after :func:`prewarm_tables` has populated a
shared cache directory, a fresh evaluator or predictor against the same
machines and grid *builds nothing* — every table set loads (zero
misses) and nothing new is persisted (zero stores).
"""

from __future__ import annotations

from repro import obs
from repro.api.facade import Predictor
from repro.api.types import Query
from repro.core.perfbench import build_grid
from repro.engine.batch import BatchEvaluator
from repro.engine.table_cache import TableCache
from repro.engine.warmup import prewarm_tables
from repro.machine import registry

POINTS = 504  # one grid "size row" per machine keeps the tests quick


class TestPrewarmTables:
    def test_cold_prewarm_stores_the_trio_per_machine(self, tmp_path):
        report = prewarm_tables(
            tmp_path, machines=("knl7210",), points=POINTS
        )
        assert [e.machine for e in report.entries] == ["knl7210"]
        entry = report.entries[0]
        assert entry.stores == 3  # one table set per paper-trio config
        assert entry.cache_misses == 3
        assert not entry.already_warm
        assert list(tmp_path.glob("tables-*.json"))

    def test_prewarmed_evaluator_builds_nothing(self, tmp_path):
        prewarm_tables(tmp_path, machines=("knl7210",), points=POINTS)
        machine = registry.build("knl7210")
        cache = TableCache(tmp_path)
        evaluator = BatchEvaluator(machine, table_cache=cache)
        evaluator.evaluate(build_grid(POINTS, machine=machine))
        assert cache.misses == 0
        assert cache.stores == 0
        assert cache.hits == 3

    def test_prewarm_is_idempotent(self, tmp_path):
        prewarm_tables(tmp_path, machines=("knl7210",), points=POINTS)
        again = prewarm_tables(tmp_path, machines=("knl7210",), points=POINTS)
        assert again.total_stores == 0
        assert all(entry.already_warm for entry in again.entries)

    def test_default_covers_every_registered_machine(self, tmp_path):
        report = prewarm_tables(tmp_path, points=POINTS)
        assert [e.machine for e in report.entries] == list(registry.names())
        # Distinct machines must land in distinct cache entries.
        assert len(list(tmp_path.glob("tables-*.json"))) == 3 * len(
            report.entries
        )

    def test_prewarmed_predictor_reports_zero_table_builds(self, tmp_path):
        prewarm_tables(tmp_path, machines=("knl7210",), points=POINTS)
        predictor = Predictor(
            machine="knl7210", table_cache_dir=str(tmp_path)
        )
        try:
            # Queries inside the prewarm grid's coverage (its sizes start
            # at 0.5 GB and step 0.15, over minife/gups x the paper trio
            # x the thread ladder).
            queries = [
                Query(
                    workload=workload,
                    size_gb=size,
                    config=config,
                    num_threads=64,
                )
                for workload in ("minife", "gups")
                for size in (0.5, 0.65)
                for config in ("DRAM", "HBM", "Cache Mode")
            ]
            results = predictor.predict_many(queries)
            assert len(results) == len(queries)
            stats = predictor.stats()
            assert stats.table_cache_misses == 0
            assert stats.table_cache_stores == 0
            assert stats.table_cache_hits > 0
        finally:
            predictor.close()

    def test_observability_counters_and_span(self, tmp_path):
        session = obs.Observation().start()
        try:
            prewarm_tables(tmp_path, machines=("knl7210",), points=POINTS)
        finally:
            session.stop()
        metrics = session.metrics_dict()["counters"]
        assert metrics["tables.prewarm_machines"] == 1.0
        assert metrics["tables.prewarm_points"] >= POINTS
        assert metrics["tables.prewarm_stores"] == 3.0
        names = {span.name for span in session.spans()}
        assert "tables.prewarm" in names

    def test_report_describe_is_informative(self, tmp_path):
        report = prewarm_tables(tmp_path, machines=("knl7210",), points=POINTS)
        text = report.describe()
        assert "knl7210" in text
        assert str(tmp_path) in text
