"""PlacementMix tests."""

import pytest

from repro.engine.placement import Location, PlacementMix


class TestConstruction:
    def test_pure(self):
        mix = PlacementMix.pure(Location.HBM)
        assert mix.fraction(Location.HBM) == 1.0
        assert mix.fraction(Location.DRAM) == 0.0
        assert mix.locations == (Location.HBM,)

    def test_of(self):
        mix = PlacementMix.of(hbm=0.6, dram=0.4)
        assert mix.fraction(Location.HBM) == pytest.approx(0.6)

    def test_of_drops_zero(self):
        mix = PlacementMix.of(hbm=1.0, dram=0.0)
        assert mix.locations == (Location.HBM,)

    def test_of_unknown_key(self):
        with pytest.raises(ValueError):
            PlacementMix.of(nvram=1.0)

    def test_must_sum_to_one(self):
        with pytest.raises(ValueError):
            PlacementMix.of(hbm=0.5, dram=0.4)

    def test_duplicate_location(self):
        with pytest.raises(ValueError):
            PlacementMix(((Location.HBM, 0.5), (Location.HBM, 0.5)))


class TestFromAllocationSplit:
    def test_flat_membind_hbm(self):
        mix = PlacementMix.from_allocation_split({1: 100})
        assert mix.fraction(Location.HBM) == 1.0

    def test_flat_membind_dram(self):
        mix = PlacementMix.from_allocation_split({0: 100})
        assert mix.fraction(Location.DRAM) == 1.0

    def test_cache_mode(self):
        mix = PlacementMix.from_allocation_split({0: 100}, dram_cached=True)
        assert mix.fraction(Location.DRAM_CACHED) == 1.0

    def test_mixed(self):
        mix = PlacementMix.from_allocation_split({0: 25, 1: 75})
        assert mix.fraction(Location.HBM) == pytest.approx(0.75)
        assert mix.fraction(Location.DRAM) == pytest.approx(0.25)

    def test_empty_split(self):
        with pytest.raises(ValueError):
            PlacementMix.from_allocation_split({})

    def test_unknown_node(self):
        with pytest.raises(ValueError):
            PlacementMix.from_allocation_split({2: 10})

    def test_describe(self):
        mix = PlacementMix.of(hbm=0.75, dram=0.25)
        assert "75% hbm" in mix.describe()
