"""Threading model tests."""

import pytest

from repro.engine.profilephase import AccessPattern, Phase
from repro.engine.threading_model import ThreadingModel
from repro.runtime.process import OpenMPEnvironment


@pytest.fixture()
def tm(machine):
    return ThreadingModel(machine)


def phase(**kw) -> Phase:
    base = dict(
        name="p",
        pattern=AccessPattern.SEQUENTIAL,
        traffic_bytes=1e9,
        footprint_bytes=10**9,
    )
    base.update(kw)
    return Phase(**base)


class TestOutstanding:
    def test_sequential_default_mlp(self, tm, machine):
        env = OpenMPEnvironment(machine, 64)
        lines = tm.outstanding_requests(phase(), env)
        assert lines == pytest.approx(64 * 13.4)

    def test_random_default_mlp(self, tm, machine):
        env = OpenMPEnvironment(machine, 64)
        lines = tm.outstanding_requests(
            phase(pattern=AccessPattern.RANDOM), env
        )
        assert lines == pytest.approx(64 * 2.0)

    def test_explicit_mlp_overrides(self, tm, machine):
        env = OpenMPEnvironment(machine, 64)
        lines = tm.outstanding_requests(phase(mlp_per_thread=1.0), env)
        assert lines == pytest.approx(64.0)

    def test_smt_scales_until_cap(self, tm, machine):
        p = phase(pattern=AccessPattern.RANDOM)
        by_threads = [
            tm.outstanding_requests(p, OpenMPEnvironment(machine, t))
            for t in (64, 128, 192, 256)
        ]
        assert by_threads == sorted(by_threads)
        assert by_threads[3] == pytest.approx(64 * 8.0)

    def test_sequential_caps_at_superqueue(self, tm, machine):
        env = OpenMPEnvironment(machine, 256)
        lines = tm.outstanding_requests(phase(), env)
        assert lines == pytest.approx(64 * 17.0)


class TestComputeScale:
    def test_monotone_to_192(self, tm, machine):
        scales = [
            tm.compute_scale(OpenMPEnvironment(machine, t))
            for t in (64, 128, 192)
        ]
        assert scales == sorted(scales)

    def test_partial_node(self, tm, machine):
        half = tm.compute_scale(OpenMPEnvironment(machine, 32))
        full = tm.compute_scale(OpenMPEnvironment(machine, 64))
        assert half == pytest.approx(full / 2)


class TestSyncOverhead:
    def test_identity_without_sync(self, tm, machine):
        env = OpenMPEnvironment(machine, 256)
        assert tm.sync_overhead_factor(phase(), env) == 1.0

    def test_linear_term(self, tm, machine):
        p = phase(sync_fraction=0.1)
        env = OpenMPEnvironment(machine, 192)
        assert tm.sync_overhead_factor(p, env) == pytest.approx(1.2)

    def test_quadratic_term(self, tm, machine):
        p = phase(sync_quadratic=0.1)
        env = OpenMPEnvironment(machine, 256)
        assert tm.sync_overhead_factor(p, env) == pytest.approx(1.9)

    def test_no_overhead_at_baseline(self, tm, machine):
        p = phase(sync_fraction=0.5, sync_quadratic=0.5)
        env = OpenMPEnvironment(machine, 64)
        assert tm.sync_overhead_factor(p, env) == 1.0
