"""Persistent ModelTables cache: keys, lifecycle, corruption, isolation.

The table cache's contract (docs/ENGINE.md) is that a fresh process
answering against a populated cache produces the *same bits* as one that
built its tables from scratch — and that nothing short of an identical
(machine, model version, configuration) triple ever shares an entry.
These tests pin:

* content-address composition — same inputs address the same entry,
  different machines / configs / ``TABLES_VERSION`` never collide;
* hit / miss / store / corrupt counters across the cold -> warm cycle;
* corrupt-file recovery — truncated JSON, checksum mismatch, and
  checksum-valid-but-malformed payloads are all dropped and rebuilt
  without poisoning results;
* incremental construction — an extending grid reuses cached slices and
  grows the entry rather than replacing it;
* bit-identical records from cache-warmed, cache-populating, and
  uncached evaluators alike; and
* the :class:`~repro.core.executor.SweepExecutor` wiring (``cache_dir``
  defaulting, ``REPRO_TABLE_CACHE``, stats surface).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro.engine.table_cache as table_cache_module
from repro.core.configs import ConfigName, make_config
from repro.core.executor import SweepCell, SweepExecutor, executor_from_env
from repro.core.runner import ExperimentRunner
from repro.engine.batch import BatchEvaluator
from repro.engine.table_cache import TableCache, table_key
from repro.machine import registry
from repro.machine.presets import knl7210
from repro.workloads.registry import FROM_GB

TRIO = [make_config(name) for name in ConfigName.paper_trio()]


def small_grid(sizes=(0.5, 4.0, 12.0), threads=(1, 64)):
    """A small but representative sweep: sizes straddle HBM capacity."""
    workloads = [FROM_GB[name](s) for s in sizes for name in ("minife", "gups")]
    return [
        (workload, config, num_threads)
        for workload in workloads
        for config in TRIO
        for num_threads in threads
    ]


class TestTableKey:
    def test_stable_across_equal_inputs(self):
        config = TRIO[0]
        assert table_key(knl7210(), config) == table_key(knl7210(), config)

    def test_configs_never_share_an_entry(self):
        machine = knl7210()
        keys = {table_key(machine, config) for config in TRIO}
        assert len(keys) == len(TRIO)

    def test_machines_never_share_an_entry(self):
        config = TRIO[0]
        assert table_key(knl7210(), config) != table_key(
            registry.build("xeonmax9480"), config
        )

    def test_model_version_invalidates_every_entry(self, monkeypatch):
        config = TRIO[0]
        before = table_key(knl7210(), config)
        monkeypatch.setattr(
            table_cache_module,
            "TABLES_VERSION",
            table_cache_module.TABLES_VERSION + 1,
        )
        assert table_key(knl7210(), config) != before


class TestLifecycle:
    def test_cold_misses_then_stores_then_warm_hits(self, tmp_path):
        grid = small_grid()
        cold_cache = TableCache(tmp_path)
        cold = BatchEvaluator(table_cache=cold_cache)
        cold.evaluate(grid)
        # One entry per configuration in the grid.
        assert cold_cache.misses == len(TRIO)
        assert cold_cache.hits == 0
        assert cold_cache.stores == len(TRIO)
        assert len(list(tmp_path.glob("tables-*.json"))) == len(TRIO)

        warm_cache = TableCache(tmp_path)
        warm = BatchEvaluator(table_cache=warm_cache)
        warm.evaluate(grid)
        assert warm_cache.hits == len(TRIO)
        assert warm_cache.misses == 0
        # Nothing new to persist: the loaded tables already cover the grid.
        assert warm_cache.stores == 0

    def test_warm_records_bit_identical_to_fresh_and_uncached(self, tmp_path):
        grid = small_grid()
        BatchEvaluator(table_cache=TableCache(tmp_path)).evaluate(grid)

        warm = BatchEvaluator(table_cache=TableCache(tmp_path)).evaluate(grid)
        uncached = BatchEvaluator().evaluate(grid)
        assert warm.records() == uncached.records()
        assert np.array_equal(warm.metric, uncached.metric, equal_nan=True)
        assert np.array_equal(warm.feasible, uncached.feasible)

    def test_repeated_evaluate_does_not_restore(self, tmp_path):
        grid = small_grid()
        cache = TableCache(tmp_path)
        evaluator = BatchEvaluator(table_cache=cache)
        evaluator.evaluate(grid)
        stores = cache.stores
        evaluator.evaluate(grid)  # fully memoized: no table growth
        assert cache.stores == stores

    def test_incremental_extension_reuses_and_grows_entries(self, tmp_path):
        def leaves(node):
            if isinstance(node, dict):
                return sum(leaves(v) for v in node.values())
            return 1

        base = small_grid(sizes=(0.5, 4.0))
        BatchEvaluator(table_cache=TableCache(tmp_path)).evaluate(base)
        probe = TableCache(tmp_path)
        config = base[0][1]
        key = table_key(knl7210(), config)
        before = leaves(probe.load(key))

        extended_cache = TableCache(tmp_path)
        extended = BatchEvaluator(table_cache=extended_cache)
        extended.evaluate(small_grid(sizes=(0.5, 4.0, 12.0, 20.0)))
        # The overlapping slices were loaded, not rebuilt...
        assert extended_cache.hits == len(TRIO)
        # ...and the new sizes merged into the same entries, growing them.
        assert extended_cache.stores == len(TRIO)
        assert leaves(TableCache(tmp_path).load(key)) > before
        assert len(list(tmp_path.glob("tables-*.json"))) == len(TRIO)


class TestCorruptionRecovery:
    @pytest.mark.parametrize(
        "damage",
        [
            lambda path: path.write_text("not json {"),
            lambda path: path.write_text(json.dumps({"payload": {}})),
            lambda path: path.write_text(
                json.dumps({"checksum": "0" * 64, "payload": {"tables": {}}})
            ),
        ],
        ids=["truncated", "missing-checksum", "checksum-mismatch"],
    )
    def test_undecodable_file_is_dropped_and_rebuilt(self, tmp_path, damage):
        grid = small_grid(sizes=(0.5, 12.0))
        BatchEvaluator(table_cache=TableCache(tmp_path)).evaluate(grid)
        victim = sorted(tmp_path.glob("tables-*.json"))[0]
        damage(victim)

        cache = TableCache(tmp_path)
        result = BatchEvaluator(table_cache=cache).evaluate(grid)
        assert cache.corrupt == 1
        assert cache.hits == len(TRIO) - 1
        assert cache.misses == 1
        # The rebuilt entry was re-persisted and decodes cleanly again.
        assert cache.stores == 1
        repaired = TableCache(tmp_path)
        repaired_evaluator = BatchEvaluator(table_cache=repaired)
        assert (
            repaired_evaluator.evaluate(grid).records() == result.records()
        )
        assert repaired.hits == len(TRIO) and repaired.corrupt == 0

    def test_checksum_valid_but_malformed_payload_recovers(self, tmp_path):
        grid = small_grid(sizes=(0.5, 12.0))
        config = grid[0][1]
        key = table_key(knl7210(), config)
        # A self-consistent file whose payload is not a ModelTables
        # snapshot: load() accepts it, prefill() must reject it.
        poisoned = TableCache(tmp_path)
        poisoned.store(key, {"tables": "bogus", "placements": {}})

        cache = TableCache(tmp_path)
        result = BatchEvaluator(table_cache=cache).evaluate(grid)
        assert cache.corrupt == 1
        assert result.records() == BatchEvaluator().evaluate(grid).records()
        # The poisoned file is gone; the rebuilt one round-trips.
        follow_up = TableCache(tmp_path)
        BatchEvaluator(table_cache=follow_up).evaluate(grid)
        assert follow_up.corrupt == 0

    def test_corrupt_file_never_poisons_results(self, tmp_path):
        grid = small_grid()
        BatchEvaluator(table_cache=TableCache(tmp_path)).evaluate(grid)
        for path in tmp_path.glob("tables-*.json"):
            path.write_text(path.read_text()[:200])  # truncate all entries
        rebuilt = BatchEvaluator(table_cache=TableCache(tmp_path)).evaluate(
            grid
        )
        assert rebuilt.records() == BatchEvaluator().evaluate(grid).records()


class TestCrossMachineIsolation:
    def test_machines_write_disjoint_entries(self, tmp_path):
        knl_grid = small_grid(sizes=(0.5, 12.0))
        BatchEvaluator(table_cache=TableCache(tmp_path)).evaluate(knl_grid)

        xeonmax = registry.build("xeonmax9480")
        xeon_cache = TableCache(tmp_path)
        BatchEvaluator(xeonmax, table_cache=xeon_cache).evaluate(knl_grid)
        # A cache warmed by KNL offers the Xeon Max nothing: every load
        # is a miss and the Xeon Max writes its own entries alongside.
        assert xeon_cache.hits == 0
        assert xeon_cache.misses == len(TRIO)
        assert len(list(tmp_path.glob("tables-*.json"))) == 2 * len(TRIO)

    def test_shared_directory_keeps_per_machine_bits(self, tmp_path):
        grid = small_grid(sizes=(0.5, 12.0))
        xeonmax = registry.build("xeonmax9480")
        BatchEvaluator(table_cache=TableCache(tmp_path)).evaluate(grid)
        BatchEvaluator(xeonmax, table_cache=TableCache(tmp_path)).evaluate(
            grid
        )
        warm_xeon = BatchEvaluator(
            registry.build("xeonmax9480"), table_cache=TableCache(tmp_path)
        ).evaluate(grid)
        fresh_xeon = BatchEvaluator(registry.build("xeonmax9480")).evaluate(
            grid
        )
        assert warm_xeon.records() == fresh_xeon.records()


class TestExecutorWiring:
    def test_cache_dir_implies_tables_subdirectory(self, tmp_path):
        with SweepExecutor(ExperimentRunner(), cache_dir=tmp_path) as ex:
            assert ex.table_cache is not None
            assert ex.table_cache.directory == tmp_path / "tables"

    def test_stats_surface_and_warm_restart(self, tmp_path):
        cells = [SweepCell(w, c, t) for w, c, t in small_grid()]
        with SweepExecutor(
            ExperimentRunner(), table_cache_dir=tmp_path
        ) as cold:
            cold_records = cold.run_cells(cells)
            assert cold.stats().table_cache_stores == len(TRIO)
            assert cold.stats().table_cache_misses == len(TRIO)
        # A new executor over the same directory models a restarted
        # process: tables load instead of rebuilding, results match.
        with SweepExecutor(
            ExperimentRunner(), table_cache_dir=tmp_path
        ) as warm:
            assert warm.run_cells(cells) == cold_records
            assert warm.stats().table_cache_hits == len(TRIO)
            assert warm.stats().table_cache_misses == 0

    def test_reset_stats_zeroes_table_counters(self, tmp_path):
        cells = [SweepCell(w, c, t) for w, c, t in small_grid((0.5,))]
        with SweepExecutor(
            ExperimentRunner(), table_cache_dir=tmp_path
        ) as ex:
            ex.run_cells(cells)
            ex.reset_stats()
            stats = ex.stats()
            assert stats.table_cache_hits == 0
            assert stats.table_cache_misses == 0
            assert stats.table_cache_stores == 0

    def test_executor_from_env_reads_table_cache_var(self, tmp_path):
        ex = executor_from_env(env={"REPRO_TABLE_CACHE": str(tmp_path)})
        assert ex is not None
        assert ex.table_cache is not None
        assert ex.table_cache.directory == tmp_path
