"""Batch-vs-scalar equivalence: the columnar engine's bit-for-bit contract.

`repro.engine.batch` promises results *identical* to the scalar engine —
not approximately equal — so these tests compare full ``RunRecord``
dataclasses (every PhaseResult float, every infeasible reason) across:

* every registry workload x the paper trio x the thread ladder,
  including the infeasible cells (HBM > 16 GB, DGEMM at 256 threads);
* fine-grained dict placements and the ablation configs (HYBRID,
  INTERLEAVE) through ``ModelTables.run_batch``;
* the executor's transparent batch path vs a forced scalar loop.

Observability in batch mode accounts in aggregate (one span, summed
counters, merged histograms); the accounting tests pin that the *totals*
match a scalar loop's.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.configs import ConfigName, make_config
from repro.core.executor import ExecutionStrategy, SweepCell, SweepExecutor
from repro.core.runner import ExperimentRunner
from repro.engine.batch import BatchEvaluator, ModelTables
from repro.engine.perfmodel import PerformanceModel
from repro.engine.placement import Location, PlacementMix
from repro.machine.presets import knl7210
from repro.memory.modes import MCDRAMConfig, MemorySystem
from repro.obs import metrics as obs_metrics
from repro.workloads.base import Workload
from repro.workloads.registry import FROM_GB
from repro.workloads.stream import StreamBenchmark
from repro.workloads.tinymembench import TinyMemBench

THREAD_LADDER = (1, 64, 128, 256)


def registry_instances() -> list[Workload]:
    """One instance of every registry workload, plus the infeasible cases."""
    sized = [factory(7.2) for factory in FROM_GB.values()]
    return sized + [
        FROM_GB["minife"](34.0),  # > 16 GB: HBM-infeasible
        StreamBenchmark(2_000_000_000),
        TinyMemBench(1_000_000_000),
    ]


@pytest.fixture(scope="module")
def grid():
    workloads = registry_instances()
    cells = [
        (workload, make_config(config), threads)
        for workload in workloads
        for config in ConfigName.paper_trio()
        for threads in THREAD_LADDER
    ]
    return cells


@pytest.fixture(scope="module")
def scalar_records(grid):
    runner = ExperimentRunner()
    return [runner.run(w, c, t) for w, c, t in grid]


class TestGoldenEquivalence:
    def test_every_record_identical(self, grid, scalar_records):
        result = BatchEvaluator().evaluate(grid)
        assert len(result) == len(grid)
        for i, expected in enumerate(scalar_records):
            assert result.record(i) == expected, grid[i]

    def test_records_list_matches_per_point_records(self, grid, scalar_records):
        assert BatchEvaluator().evaluate(grid).records() == scalar_records

    def test_infeasible_cells_surface_identically(self, grid, scalar_records):
        result = BatchEvaluator().evaluate(grid)
        infeasible = [
            i for i, r in enumerate(scalar_records) if r.infeasible_reason
        ]
        # The grid must actually contain both modelled failure modes.
        reasons = {scalar_records[i].infeasible_reason for i in infeasible}
        assert any("NUMA node" in r for r in reasons)  # HBM capacity
        assert any("256" in r for r in reasons)  # DGEMM thread limit
        for i in infeasible:
            assert not result.feasible[i]
            assert np.isnan(result.metric[i])
            assert (
                result.record(i).infeasible_reason
                == scalar_records[i].infeasible_reason
            )

    def test_metric_array_matches_scalar_metrics(self, grid, scalar_records):
        result = BatchEvaluator().evaluate(grid)
        for i, record in enumerate(scalar_records):
            if record.metric is None:
                assert np.isnan(result.metric[i])
            else:
                assert result.metric[i] == record.metric

    def test_invalid_thread_count_raises_like_scalar(self):
        workload = FROM_GB["gups"](1.0)
        cells = [(workload, make_config(ConfigName.DRAM), 300)]
        with pytest.raises(ValueError):
            BatchEvaluator().evaluate(cells)

    def test_evaluator_state_reused_across_calls(self, grid, scalar_records):
        evaluator = BatchEvaluator()
        evaluator.evaluate(grid)  # prime every memo table
        assert evaluator.evaluate(grid).records() == scalar_records


class TestRunBatch:
    """ModelTables.run_batch vs PerformanceModel.run (fine-grained API)."""

    @pytest.mark.parametrize(
        "mcdram",
        [
            MCDRAMConfig.flat(),
            MCDRAMConfig.cache(),
            MCDRAMConfig.hybrid(0.5),
        ],
        ids=["flat", "cache", "hybrid"],
    )
    def test_pure_mixes_match(self, mcdram):
        machine = knl7210()
        memory = MemorySystem(mcdram)
        tables = ModelTables(machine, memory)
        model = PerformanceModel(machine, memory)
        profile = FROM_GB["minife"](7.2).profile()
        locations = []
        if not memory.dram_fronted_by_cache:
            locations.append(Location.DRAM)
        else:
            locations.append(Location.DRAM_CACHED)
        if memory.has_flat_hbm:
            locations.append(Location.HBM)
        requests = [
            (profile, PlacementMix.pure(location), threads)
            for location in locations
            for threads in THREAD_LADDER
        ]
        batch = tables.run_batch(requests)
        for (p, mix, threads), got in zip(requests, batch):
            assert got == model.run(p, mix, threads)

    def test_split_and_dict_mixes_match(self):
        machine = knl7210()
        memory = MemorySystem(MCDRAMConfig.flat())
        tables = ModelTables(machine, memory)
        model = PerformanceModel(machine, memory)
        profile = FROM_GB["minife"](7.2).profile()
        split = PlacementMix(((Location.DRAM, 0.3), (Location.HBM, 0.7)))
        per_phase = {
            phase.name: PlacementMix.pure(
                Location.HBM if i % 2 else Location.DRAM
            )
            for i, phase in enumerate(profile.phases)
        }
        requests = [
            (profile, split, 64),
            (profile, per_phase, 64),
            (profile, split, 256),
        ]
        batch = tables.run_batch(requests)
        for (p, mix, threads), got in zip(requests, batch):
            assert got == model.run(p, mix, threads)

    def test_missing_phase_raises_like_scalar(self):
        machine = knl7210()
        memory = MemorySystem(MCDRAMConfig.flat())
        tables = ModelTables(machine, memory)
        model = PerformanceModel(machine, memory)
        profile = FROM_GB["minife"](7.2).profile()
        partial = {profile.phases[0].name: PlacementMix.pure(Location.DRAM)}
        with pytest.raises(ValueError) as batch_err:
            tables.run_batch([(profile, partial, 64)])
        with pytest.raises(ValueError) as scalar_err:
            model.run(profile, partial, 64)
        assert str(batch_err.value) == str(scalar_err.value)


class TestExecutorBatchPath:
    def test_batch_strategy_parses(self):
        assert ExecutionStrategy.parse("batch") is ExecutionStrategy.BATCH

    def test_executor_records_identical_to_forced_scalar(self, grid):
        cells = [SweepCell(w, c, t) for w, c, t in grid]
        with SweepExecutor(ExperimentRunner()) as batched:
            via_batch = batched.run_cells(cells)
        # jobs=2 + threads strategy is excluded from the batch gate and
        # dispatches per cell through the historical path.
        with SweepExecutor(
            ExperimentRunner(), jobs=2, strategy="threads"
        ) as scalar:
            via_scalar = scalar.run_cells(cells)
        assert via_batch == via_scalar

    def test_single_cell_uses_scalar_path(self):
        # One cell gains nothing from vectorization; the gate requires
        # at least two so `executor.run` keeps per-cell span semantics.
        executor = SweepExecutor(ExperimentRunner())
        assert not executor._batch_eligible(
            [SweepCell(FROM_GB["gups"](1.0), make_config(ConfigName.DRAM), 64)]
        )

    def test_checking_runner_not_batched(self):
        executor = SweepExecutor(ExperimentRunner(), check="warn")
        cells = [
            SweepCell(FROM_GB["gups"](1.0), make_config(c), 64)
            for c in ConfigName.paper_trio()
        ]
        assert not executor._batch_eligible(cells)

    def test_env_selects_batch_strategy(self, monkeypatch):
        from repro.core.executor import executor_from_env

        monkeypatch.setenv("REPRO_EXECUTOR", "batch")
        executor = executor_from_env(ExperimentRunner())
        assert executor.strategy is ExecutionStrategy.BATCH


class TestBatchObservability:
    """Aggregate accounting must total the same as a scalar loop's."""

    @pytest.fixture()
    def small_grid(self):
        workloads = [FROM_GB["minife"](7.2), FROM_GB["gups"](1.0),
                     FROM_GB["minife"](34.0)]
        return [
            (w, make_config(c), t)
            for w in workloads
            for c in ConfigName.paper_trio()
            for t in (64, 256)
        ]

    def _collect(self, fn):
        registry = obs_metrics.install()
        try:
            fn()
        finally:
            obs_metrics.uninstall()
        return registry.as_dict()

    def test_counter_totals_match_scalar_loop(self, small_grid):
        runner = ExperimentRunner()
        scalar = self._collect(
            lambda: [runner.run(w, c, t) for w, c, t in small_grid]
        )
        batch = self._collect(
            lambda: BatchEvaluator().evaluate(small_grid)
        )
        assert set(batch["counters"]) == set(scalar["counters"])
        for name, value in scalar["counters"].items():
            assert batch["counters"][name] == pytest.approx(value, rel=1e-9), name
        # Run accounting is integral and must be exact.
        for name in ("model.runs",):
            assert batch["counters"][name] == scalar["counters"][name]

    def test_histogram_totals_match_scalar_loop(self, small_grid):
        runner = ExperimentRunner()
        scalar = self._collect(
            lambda: [runner.run(w, c, t) for w, c, t in small_grid]
        )
        batch = self._collect(
            lambda: BatchEvaluator().evaluate(small_grid)
        )
        assert set(batch["histograms"]) == set(scalar["histograms"])
        for name, summary in scalar["histograms"].items():
            got = batch["histograms"][name]
            assert got["count"] == summary["count"], name
            assert got["min"] == summary["min"], name
            assert got["max"] == summary["max"], name
            assert got["sum"] == pytest.approx(summary["sum"], rel=1e-9), name

    def test_batch_emits_aggregate_span_not_per_point(self, small_grid):
        from repro.obs import trace as obs_trace

        tracer = obs_trace.install()
        try:
            BatchEvaluator().evaluate(small_grid)
        finally:
            obs_trace.uninstall()
        names = [record.name for record in tracer.records()]
        assert names.count("batch.evaluate") == 1
        assert "perfmodel.run" not in names

    def test_records_identical_with_observability_active(
        self, small_grid
    ):
        plain = BatchEvaluator().evaluate(small_grid).records()
        obs_metrics.install()
        try:
            observed = BatchEvaluator().evaluate(small_grid).records()
        finally:
            obs_metrics.uninstall()
        assert observed == plain


class TestObserveMany:
    def test_matches_per_observation_summary(self):
        a, b = obs_metrics.MetricsRegistry(), obs_metrics.MetricsRegistry()
        values = [3.0, 1.0, 2.0, 5.0, 4.0]
        for v in values:
            a.observe("x", v)
        b.observe_many("x", np.array(values))
        sa, sb = a.histogram_summary("x"), b.histogram_summary("x")
        assert (sb.count, sb.minimum, sb.maximum) == (
            sa.count,
            sa.minimum,
            sa.maximum,
        )
        assert sb.total == pytest.approx(sa.total)

    def test_empty_batch_is_a_noop(self):
        registry = obs_metrics.MetricsRegistry()
        registry.observe_many("x", np.array([]))
        assert registry.histogram_summary("x") is None

    def test_merge_folds_extremes(self):
        h = obs_metrics.Histogram()
        h.observe(10.0)
        h.merge(count=2, total=3.0, minimum=1.0, maximum=2.0)
        assert h.count == 3
        assert h.total == 13.0
        assert h.minimum == 1.0
        assert h.maximum == 10.0
        h.merge(count=0, total=99.0, minimum=-5.0, maximum=50.0)  # ignored
        assert h.count == 3

    def test_module_level_noop_when_disabled(self):
        obs_metrics.observe_many("x", np.array([1.0]))  # must not raise


class TestScalarReferenceFill:
    """``vectorized=False`` retains the scalar fill path as a live twin.

    Both fill modes populate the same memo dictionaries; the vectorized
    bulk fills must leave *identical* table contents (the exact floats
    ``snapshot()`` would persist) and answer every request with the same
    records.  This is the in-repo proof that the columnar construction
    is a pure perf change, independent of the end-to-end identity tests
    above.
    """

    @pytest.mark.parametrize(
        "mcdram",
        [MCDRAMConfig.flat(), MCDRAMConfig.cache()],
        ids=["flat", "cache"],
    )
    def test_memos_and_outputs_identical(self, mcdram):
        machine = knl7210()
        memory = MemorySystem(mcdram)
        vectorized = ModelTables(machine, memory, vectorized=True)
        reference = ModelTables(machine, memory, vectorized=False)
        profiles = [
            FROM_GB[name](size).profile()
            for name in ("minife", "gups")
            for size in (0.5, 7.2, 12.0)
        ]
        if memory.dram_fronted_by_cache:
            locations = [Location.DRAM_CACHED]
        else:
            locations = [Location.DRAM, Location.HBM]
        requests = [
            (profile, PlacementMix.pure(location), threads)
            for profile in profiles
            for location in locations
            for threads in (1, 64, 256)
        ]
        assert vectorized.run_batch(requests) == reference.run_batch(requests)
        assert vectorized.entry_count() == reference.entry_count()
        assert vectorized.snapshot() == reference.snapshot()

    def test_snapshot_prefill_round_trip_is_exact(self):
        machine = knl7210()
        memory = MemorySystem(MCDRAMConfig.cache())
        built = ModelTables(machine, memory)
        profile = FROM_GB["minife"](7.2).profile()
        requests = [
            (profile, PlacementMix.pure(Location.DRAM_CACHED), threads)
            for threads in (1, 64, 256)
        ]
        expected = built.run_batch(requests)
        # Through the JSON wire format, like the persistent cache does.
        import json

        payload = json.loads(json.dumps(built.snapshot()))
        loaded = ModelTables(machine, memory)
        loaded.prefill(payload)
        assert loaded.snapshot() == built.snapshot()
        assert loaded.run_batch(requests) == expected
