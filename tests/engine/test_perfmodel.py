"""Performance model tests: the paper's hardware characterization must
fall out of the engine."""

import pytest

from repro.engine.calibration import PAPER_CHARACTERIZATION as P
from repro.engine.perfmodel import PerformanceModel
from repro.engine.placement import Location, PlacementMix
from repro.engine.profilephase import AccessPattern, MemoryProfile, Phase
from repro.util.units import GB, GiB


def stream_profile(size_gb: float = 4.0) -> MemoryProfile:
    return MemoryProfile(
        "stream",
        (
            Phase(
                name="triad",
                pattern=AccessPattern.SEQUENTIAL,
                traffic_bytes=size_gb * GB,
                footprint_bytes=int(size_gb * GB),
            ),
        ),
    )


def random_profile(footprint_gb: float = 8.0, mlp: float = 2.0) -> MemoryProfile:
    return MemoryProfile(
        "rand",
        (
            Phase(
                name="chase",
                pattern=AccessPattern.RANDOM,
                traffic_bytes=1e8,
                footprint_bytes=int(footprint_gb * GB),
                access_bytes=8,
                mlp_per_thread=mlp,
            ),
        ),
    )


def achieved_bw(model, mix, threads=64, profile=None):
    run = model.run(profile or stream_profile(), mix, threads)
    return run.phase_results[0].achieved_bandwidth


class TestStreamCalibration:
    def test_dram_77(self, flat_model):
        bw = achieved_bw(flat_model, PlacementMix.pure(Location.DRAM))
        assert bw == pytest.approx(P.dram_stream_gbs * 1e9, rel=0.01)

    def test_hbm_330(self, flat_model):
        bw = achieved_bw(flat_model, PlacementMix.pure(Location.HBM))
        assert bw == pytest.approx(P.hbm_stream_gbs * 1e9, rel=0.01)

    def test_hbm_smt_reaches_420(self, flat_model):
        bw = achieved_bw(flat_model, PlacementMix.pure(Location.HBM), threads=128)
        assert bw == pytest.approx(P.hbm_stream_max_gbs * 1e9, rel=0.01)

    def test_dram_smt_flat(self, flat_model):
        one = achieved_bw(flat_model, PlacementMix.pure(Location.DRAM), 64)
        four = achieved_bw(flat_model, PlacementMix.pure(Location.DRAM), 256)
        assert four / one < 1.05

    def test_cache_mode_260_at_8gb(self, cache_model_pm):
        bw = achieved_bw(
            cache_model_pm,
            PlacementMix.pure(Location.DRAM_CACHED),
            profile=stream_profile(8.0),
        )
        assert bw == pytest.approx(P.cache_peak_gbs * 1e9, rel=0.03)


class TestLocationChecks:
    def test_hbm_requires_flat_mode(self, cache_model_pm):
        with pytest.raises(ValueError, match="flat"):
            cache_model_pm.run(
                stream_profile(), PlacementMix.pure(Location.HBM), 64
            )

    def test_cached_requires_cache_mode(self, flat_model):
        with pytest.raises(ValueError, match="flat mode"):
            flat_model.run(
                stream_profile(), PlacementMix.pure(Location.DRAM_CACHED), 64
            )

    def test_plain_dram_invalid_in_cache_mode(self, cache_model_pm):
        with pytest.raises(ValueError, match="DRAM_CACHED"):
            cache_model_pm.run(
                stream_profile(), PlacementMix.pure(Location.DRAM), 64
            )


class TestRandomPath:
    def test_dram_beats_hbm_at_one_thread_per_core(self, flat_model):
        """The paper's central latency-bound result."""
        dram = flat_model.run(
            random_profile(), PlacementMix.pure(Location.DRAM), 64
        )
        hbm = flat_model.run(
            random_profile(), PlacementMix.pure(Location.HBM), 64
        )
        assert dram.time_ns < hbm.time_ns

    def test_hbm_latency_gap_15_to_20_percent(self, flat_model):
        for gb in (1, 8, 32):
            d = flat_model.random_latency_ns(Location.DRAM, gb * GB)
            h = flat_model.random_latency_ns(Location.HBM, gb * GB)
            assert P.latency_gap_min - 0.02 <= h / d - 1 <= P.latency_gap_max + 0.02

    def test_hardware_threads_help_random(self, flat_model):
        t64 = flat_model.run(
            random_profile(), PlacementMix.pure(Location.HBM), 64
        ).time_ns
        t256 = flat_model.run(
            random_profile(), PlacementMix.pure(Location.HBM), 256
        ).time_ns
        assert t256 < t64 / 2.0

    def test_random_capped_by_device(self, flat_model):
        """With huge MLP the rate pins at the device random cap."""
        prof = random_profile(mlp=16.0)
        run = flat_model.run(prof, PlacementMix.pure(Location.DRAM), 256)
        cap_lines = flat_model.random_capacity_lines(Location.DRAM, 8 * GB)
        achieved_lines = (
            prof.phases[0].accesses / (run.phase_results[0].time_ns / 1e9)
        )
        assert achieved_lines == pytest.approx(cap_lines, rel=0.01)


class TestMixedPlacement:
    def test_mix_between_pure_extremes(self, flat_model):
        pure_dram = flat_model.run(
            stream_profile(), PlacementMix.pure(Location.DRAM), 64
        ).time_ns
        pure_hbm = flat_model.run(
            stream_profile(), PlacementMix.pure(Location.HBM), 64
        ).time_ns
        mixed = flat_model.run(
            stream_profile(), PlacementMix.of(hbm=0.5, dram=0.5), 64
        ).time_ns
        assert pure_hbm < mixed < pure_dram

    def test_interleave_bandwidth_can_add(self, flat_model):
        """50/50 interleave overlaps both devices: each serves half the
        bytes, so the total time is half the slower device's full time."""
        mixed = flat_model.run(
            stream_profile(), PlacementMix.of(hbm=0.5, dram=0.5), 64
        )
        # DRAM half dominates: 0.5 * bytes / 77 GB/s.
        expected = 0.5 * 4 * GB / (P.dram_stream_gbs * 1e9) * 1e9
        assert mixed.time_ns == pytest.approx(expected, rel=0.02)


class TestComputeSide:
    def test_compute_bound_phase(self, flat_model, machine):
        prof = MemoryProfile(
            "flops",
            (
                Phase(
                    name="fma",
                    pattern=AccessPattern.SEQUENTIAL,
                    traffic_bytes=1.0,
                    flops=1e12,
                    footprint_bytes=1000,
                ),
            ),
        )
        run = flat_model.run(prof, PlacementMix.pure(Location.HBM), 128)
        r = run.phase_results[0]
        assert r.bottleneck == "compute"
        # 1e12 flops at 0.85 issue efficiency of 2662 GF peak.
        expected_ns = 1e12 / (machine.peak_dp_gflops * 0.85 * 1e9) * 1e9
        assert r.time_ns == pytest.approx(expected_ns, rel=0.01)

    def test_memory_bound_phase_reports_memory(self, flat_model):
        run = flat_model.run(
            stream_profile(), PlacementMix.pure(Location.DRAM), 64
        )
        assert run.phase_results[0].bottleneck == "memory"


class TestRunResult:
    def test_total_is_sum_of_phases(self, flat_model):
        prof = MemoryProfile(
            "two",
            (
                Phase("a", AccessPattern.SEQUENTIAL, 1 * GB, footprint_bytes=GB),
                Phase("b", AccessPattern.SEQUENTIAL, 2 * GB, footprint_bytes=GB),
            ),
        )
        run = flat_model.run(prof, PlacementMix.pure(Location.DRAM), 64)
        assert run.time_ns == pytest.approx(
            sum(p.time_ns for p in run.phase_results)
        )

    def test_rate_and_gflops(self, flat_model):
        run = flat_model.run(
            stream_profile(), PlacementMix.pure(Location.DRAM), 64
        )
        assert run.rate_per_s(100.0) == pytest.approx(100.0 / run.time_s)
        assert run.gflops(1e9) == pytest.approx(1.0 / run.time_s)


class TestRunDescribe:
    def test_breakdown_mentions_phases_and_bottlenecks(self, flat_model):
        from repro.workloads.minife import MiniFE

        w = MiniFE.from_matrix_gb(3.6)
        run = flat_model.run(w.profile(), PlacementMix.pure(Location.HBM), 128)
        text = run.describe()
        assert "spmv-stream" in text
        assert "vector-ops" in text
        assert "memory-bound" in text
        assert "GB/s" in text
        assert "sync x" in text  # vector-ops carries dot-product sync


class TestColumnarTwins:
    """The model-level ``*_many`` methods equal their scalar twins exactly.

    These are the paths :class:`repro.engine.batch.ModelTables` uses to
    fill its memo tables in bulk, so the bar is bit identity per element
    — per location kind (flat DRAM/HBM and the DRAM-fronted cache mode)
    across footprints straddling MCDRAM capacity.
    """

    FOOTPRINTS = [4096, 1 * GB, 8 * GB, 16 * GiB, 24 * GB, 200 * GB]

    def column(self):
        import numpy as np

        return np.array(self.FOOTPRINTS, dtype=np.int64)

    def locations(self, model):
        if model.memory.dram_fronted_by_cache:
            return [Location.DRAM_CACHED]
        return [Location.DRAM, Location.HBM]

    def models(self, flat_model, cache_model_pm):
        return [flat_model, cache_model_pm]

    def test_sequential_bandwidth_many(self, flat_model, cache_model_pm):
        for model in self.models(flat_model, cache_model_pm):
            for loc in self.locations(model):
                for tpc in (1, 2, 4):
                    many = model.sequential_bandwidth_many(
                        loc, self.column(), tpc, 0.33
                    )
                    for fp, got in zip(self.FOOTPRINTS, many.tolist()):
                        assert got == model.sequential_bandwidth(
                            loc, fp, tpc, 0.33
                        ), (loc, tpc, fp)

    def test_sequential_latency_ns_many(self, flat_model, cache_model_pm):
        for model in self.models(flat_model, cache_model_pm):
            for loc in self.locations(model):
                many = model.sequential_latency_ns_many(loc, self.column())
                for fp, got in zip(self.FOOTPRINTS, many.tolist()):
                    assert got == model.sequential_latency_ns(loc, fp), (
                        loc,
                        fp,
                    )

    def test_random_latency_ns_many(self, flat_model, cache_model_pm):
        for model in self.models(flat_model, cache_model_pm):
            for loc in self.locations(model):
                many = model.random_latency_ns_many(loc, self.column())
                for fp, got in zip(self.FOOTPRINTS, many.tolist()):
                    assert got == model.random_latency_ns(loc, fp), (loc, fp)

    def test_random_capacity_lines_many(self, flat_model, cache_model_pm):
        for model in self.models(flat_model, cache_model_pm):
            for loc in self.locations(model):
                for wf in (0.0, 0.5):
                    many = model.random_capacity_lines_many(
                        loc, self.column(), wf
                    )
                    for fp, got in zip(self.FOOTPRINTS, many.tolist()):
                        assert got == model.random_capacity_lines(
                            loc, fp, wf
                        ), (loc, wf, fp)

    def test_unavailable_location_rejected(self, flat_model, cache_model_pm):
        for model, loc in (
            (flat_model, Location.DRAM_CACHED),
            (cache_model_pm, Location.HBM),
        ):
            with pytest.raises(ValueError):
                model.sequential_bandwidth_many(loc, self.column(), 1)
