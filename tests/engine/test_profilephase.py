"""Phase / MemoryProfile tests."""

import pytest

from repro.engine.profilephase import AccessPattern, MemoryProfile, Phase


def phase(**kw) -> Phase:
    base = dict(
        name="p",
        pattern=AccessPattern.SEQUENTIAL,
        traffic_bytes=1e9,
        footprint_bytes=10**9,
    )
    base.update(kw)
    return Phase(**base)


class TestPhase:
    def test_accesses(self):
        p = phase(traffic_bytes=640.0, access_bytes=64)
        assert p.accesses == 10.0

    def test_random_granularity(self):
        p = phase(pattern=AccessPattern.RANDOM, traffic_bytes=80.0, access_bytes=8)
        assert p.accesses == 10.0

    def test_arithmetic_intensity(self):
        p = phase(traffic_bytes=100.0, flops=400.0)
        assert p.arithmetic_intensity == pytest.approx(4.0)

    def test_intensity_degenerate_cases(self):
        assert phase(traffic_bytes=0.0, flops=1.0).arithmetic_intensity == float("inf")
        assert phase(traffic_bytes=0.0, flops=0.0).arithmetic_intensity == 0.0

    def test_scaled(self):
        p = phase(traffic_bytes=10.0, flops=2.0).scaled(200)
        assert p.traffic_bytes == 2000.0
        assert p.flops == 400.0
        assert p.footprint_bytes == 10**9  # footprint unchanged

    @pytest.mark.parametrize(
        "kw",
        [
            dict(name=""),
            dict(traffic_bytes=-1),
            dict(access_bytes=0),
            dict(access_bytes=128),  # > line size
            dict(mlp_per_thread=0.0),
            dict(compute_efficiency=0.0),
            dict(compute_efficiency=1.5),
            dict(sync_fraction=-0.1),
            dict(sync_quadratic=-0.1),
            dict(write_fraction=1.5),
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            phase(**kw)


class TestMemoryProfile:
    def test_aggregates(self):
        prof = MemoryProfile(
            "w",
            (
                phase(traffic_bytes=10.0, flops=1.0, footprint_bytes=100),
                phase(traffic_bytes=30.0, flops=2.0, footprint_bytes=50,
                      pattern=AccessPattern.RANDOM),
            ),
        )
        assert prof.total_traffic_bytes == 40.0
        assert prof.total_flops == 3.0
        assert prof.footprint_bytes == 100

    def test_dominant_pattern_by_traffic(self):
        prof = MemoryProfile(
            "w",
            (
                phase(traffic_bytes=10.0),
                phase(traffic_bytes=30.0, pattern=AccessPattern.RANDOM),
            ),
        )
        assert prof.dominant_pattern is AccessPattern.RANDOM

    def test_needs_phases(self):
        with pytest.raises(ValueError):
            MemoryProfile("w", ())

    def test_needs_name(self):
        with pytest.raises(ValueError):
            MemoryProfile("", (phase(),))
