"""Event-simulator tests: the analytic engine's two regimes must emerge
from queueing with no Little's-law shortcut."""

import pytest

from repro.engine.eventsim import MemoryEventSimulator
from repro.engine.littles_law import littles_law_bandwidth
from repro.memory.dram import ddr4_archer
from repro.memory.mcdram import mcdram_archer


class TestLatencyBoundRegime:
    def test_low_concurrency_bandwidth_matches_littles_law(self):
        """One outstanding request per thread, few threads: achieved
        bandwidth = outstanding * line / latency."""
        sim = MemoryEventSimulator(ddr4_archer(), sequential=False)
        result = sim.run(threads=4, mlp=1, requests_per_thread=4000, seed=1)
        predicted = littles_law_bandwidth(4.0, result.mean_latency_ns)
        assert result.bandwidth_bytes_per_s == pytest.approx(predicted, rel=0.05)

    def test_unloaded_latency_close_to_idle(self):
        sim = MemoryEventSimulator(ddr4_archer(), sequential=False)
        result = sim.run(threads=1, mlp=1, requests_per_thread=2000, seed=2)
        assert result.mean_latency_ns == pytest.approx(
            ddr4_archer().idle_latency_ns, rel=0.05
        )

    def test_hbm_slower_than_dram_at_low_concurrency(self):
        """The paper's latency story, from queueing alone."""
        dram = MemoryEventSimulator(ddr4_archer(), sequential=False).run(
            threads=8, mlp=2, requests_per_thread=2000, seed=3
        )
        hbm = MemoryEventSimulator(mcdram_archer(), sequential=False).run(
            threads=8, mlp=2, requests_per_thread=2000, seed=3
        )
        assert dram.elapsed_ns < hbm.elapsed_ns


class TestBandwidthBoundRegime:
    def test_high_concurrency_saturates_device(self):
        sim = MemoryEventSimulator(ddr4_archer(), sequential=True)
        result = sim.run(threads=64, mlp=16, requests_per_thread=400, seed=4)
        assert result.bandwidth_bytes_per_s == pytest.approx(
            ddr4_archer().peak_bandwidth, rel=0.05
        )

    def test_hbm_wins_at_high_concurrency(self):
        """The paper's bandwidth story, from queueing alone."""
        dram = MemoryEventSimulator(ddr4_archer(), sequential=True).run(
            threads=64, mlp=16, requests_per_thread=300, seed=5
        )
        hbm = MemoryEventSimulator(mcdram_archer(), sequential=True).run(
            threads=64, mlp=16, requests_per_thread=300, seed=5
        )
        assert hbm.elapsed_ns < dram.elapsed_ns / 3.0

    def test_latency_inflates_under_load(self):
        """Queueing delay appears as the device saturates — the loaded-
        latency phenomenon the analytic model approximates."""
        sim = MemoryEventSimulator(ddr4_archer(), sequential=True)
        light = sim.run(threads=4, mlp=1, requests_per_thread=1000, seed=6)
        heavy = sim.run(threads=64, mlp=16, requests_per_thread=200, seed=6)
        assert heavy.mean_latency_ns > 1.5 * light.mean_latency_ns


class TestOptimizedBitIdentity:
    """The optimized cores are twins of ``_simulate_reference``: every
    field of the result must compare *equal* (bit-identical floats), for
    both the scalar loop and the numpy-batched core, on both devices and
    both access patterns."""

    MATRIX = [
        # (threads, mlp, requests_per_thread) spanning priming-only runs,
        # latency-bound, the scalar regime and the batched regime.
        (1, 1.0, 1),
        (2, 2.5, 3),
        (7, 1.0, 50),
        (16, 8.0, 50),
        (64, 8.0, 60),
        (128, 16.0, 40),
    ]

    @pytest.mark.parametrize("sequential", [True, False])
    @pytest.mark.parametrize("device", [ddr4_archer, mcdram_archer])
    def test_dispatch_matches_reference(self, device, sequential):
        sim = MemoryEventSimulator(device(), sequential=sequential)
        for threads, mlp, rpt in self.MATRIX:
            for seed in (1, 5):
                kw = dict(
                    threads=threads,
                    mlp=mlp,
                    requests_per_thread=rpt,
                    seed=seed,
                )
                assert sim._simulate(**kw) == sim._simulate_reference(**kw), kw

    def test_both_cores_match_reference_directly(self):
        """Exercise each core explicitly, independent of the dispatch
        threshold, on a point from the other core's home regime."""
        sim = MemoryEventSimulator(ddr4_archer(), sequential=False)
        for kw in (
            dict(threads=64, mlp=8.0, requests_per_thread=40, seed=3),
            dict(threads=128, mlp=16.0, requests_per_thread=30, seed=3),
        ):
            reference = sim._simulate_reference(**kw)
            assert sim._simulate_scalar(**kw) == reference, kw
            assert sim._simulate_batched(**kw) == reference, kw

    def test_matrix_covers_both_cores(self):
        """The seed matrix must keep exercising both dispatch targets."""
        caps = [
            t * min(max(1, int(round(m))), r) for t, m, r in self.MATRIX
        ]
        threshold = MemoryEventSimulator._BATCH_MIN_INFLIGHT
        assert any(cap < threshold for cap in caps)
        assert any(cap >= threshold for cap in caps)


class TestPrimingFirstRequests:
    """Regression for the priming branch: a priming request starts the
    moment its channel frees up (channels start free at t=0), so the
    dead ``start if start > 0.0 else 0.0`` guard is gone and the first
    request of a single-thread run completes after exactly one service
    plus the wire delay."""

    def test_single_request_latency_is_service_plus_wire(self):
        sim = MemoryEventSimulator(ddr4_archer(), sequential=False)
        result = sim.run(threads=1, mlp=1, requests_per_thread=1, seed=9)
        assert result.requests == 1
        assert result.elapsed_ns == sim.service_ns + sim.wire_ns
        assert result.mean_latency_ns == sim.service_ns + sim.wire_ns

    def test_priming_only_runs_match_reference(self):
        """Runs that never leave the priming phase (mlp >= requests)."""
        for device in (ddr4_archer, mcdram_archer):
            sim = MemoryEventSimulator(device(), sequential=True)
            for threads in (1, 3, 64):
                kw = dict(
                    threads=threads, mlp=4.0, requests_per_thread=2, seed=11
                )
                assert sim._simulate(**kw) == sim._simulate_reference(**kw)


class TestConcurrencyScaling:
    def test_bandwidth_monotone_in_mlp_until_saturation(self):
        sim = MemoryEventSimulator(mcdram_archer(), sequential=True)
        bws = [
            sim.run(threads=64, mlp=m, requests_per_thread=200, seed=7)
            .bandwidth_bytes_per_s
            for m in (1, 2, 4, 8, 16)
        ]
        assert bws == sorted(bws)
        # mlp=16 sits right at the bandwidth-delay product; random channel
        # assignment leaves ~10-15 % instantaneous imbalance, so expect
        # >= 80 % of peak rather than full saturation.
        assert bws[-1] >= 0.8 * mcdram_archer().peak_bandwidth

    def test_smt_story_emerges(self):
        """The Fig. 5 mechanism: at prefetcher-MLP 13, one thread per core
        leaves MCDRAM under-supplied; doubling the windows recovers it."""
        sim = MemoryEventSimulator(mcdram_archer(), sequential=True)
        one = sim.run(threads=64, mlp=13, requests_per_thread=300, seed=8)
        two = sim.run(threads=128, mlp=13, requests_per_thread=300, seed=8)
        gain = two.bandwidth_bytes_per_s / one.bandwidth_bytes_per_s
        assert 1.05 < gain < 1.45

    def test_validation(self):
        sim = MemoryEventSimulator(ddr4_archer())
        with pytest.raises(ValueError):
            sim.run(threads=0, mlp=1, requests_per_thread=10)
