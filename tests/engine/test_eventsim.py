"""Event-simulator tests: the analytic engine's two regimes must emerge
from queueing with no Little's-law shortcut."""

import pytest

from repro.engine.eventsim import MemoryEventSimulator
from repro.engine.littles_law import littles_law_bandwidth
from repro.memory.dram import ddr4_archer
from repro.memory.mcdram import mcdram_archer


class TestLatencyBoundRegime:
    def test_low_concurrency_bandwidth_matches_littles_law(self):
        """One outstanding request per thread, few threads: achieved
        bandwidth = outstanding * line / latency."""
        sim = MemoryEventSimulator(ddr4_archer(), sequential=False)
        result = sim.run(threads=4, mlp=1, requests_per_thread=4000, seed=1)
        predicted = littles_law_bandwidth(4.0, result.mean_latency_ns)
        assert result.bandwidth_bytes_per_s == pytest.approx(predicted, rel=0.05)

    def test_unloaded_latency_close_to_idle(self):
        sim = MemoryEventSimulator(ddr4_archer(), sequential=False)
        result = sim.run(threads=1, mlp=1, requests_per_thread=2000, seed=2)
        assert result.mean_latency_ns == pytest.approx(
            ddr4_archer().idle_latency_ns, rel=0.05
        )

    def test_hbm_slower_than_dram_at_low_concurrency(self):
        """The paper's latency story, from queueing alone."""
        dram = MemoryEventSimulator(ddr4_archer(), sequential=False).run(
            threads=8, mlp=2, requests_per_thread=2000, seed=3
        )
        hbm = MemoryEventSimulator(mcdram_archer(), sequential=False).run(
            threads=8, mlp=2, requests_per_thread=2000, seed=3
        )
        assert dram.elapsed_ns < hbm.elapsed_ns


class TestBandwidthBoundRegime:
    def test_high_concurrency_saturates_device(self):
        sim = MemoryEventSimulator(ddr4_archer(), sequential=True)
        result = sim.run(threads=64, mlp=16, requests_per_thread=400, seed=4)
        assert result.bandwidth_bytes_per_s == pytest.approx(
            ddr4_archer().peak_bandwidth, rel=0.05
        )

    def test_hbm_wins_at_high_concurrency(self):
        """The paper's bandwidth story, from queueing alone."""
        dram = MemoryEventSimulator(ddr4_archer(), sequential=True).run(
            threads=64, mlp=16, requests_per_thread=300, seed=5
        )
        hbm = MemoryEventSimulator(mcdram_archer(), sequential=True).run(
            threads=64, mlp=16, requests_per_thread=300, seed=5
        )
        assert hbm.elapsed_ns < dram.elapsed_ns / 3.0

    def test_latency_inflates_under_load(self):
        """Queueing delay appears as the device saturates — the loaded-
        latency phenomenon the analytic model approximates."""
        sim = MemoryEventSimulator(ddr4_archer(), sequential=True)
        light = sim.run(threads=4, mlp=1, requests_per_thread=1000, seed=6)
        heavy = sim.run(threads=64, mlp=16, requests_per_thread=200, seed=6)
        assert heavy.mean_latency_ns > 1.5 * light.mean_latency_ns


class TestConcurrencyScaling:
    def test_bandwidth_monotone_in_mlp_until_saturation(self):
        sim = MemoryEventSimulator(mcdram_archer(), sequential=True)
        bws = [
            sim.run(threads=64, mlp=m, requests_per_thread=200, seed=7)
            .bandwidth_bytes_per_s
            for m in (1, 2, 4, 8, 16)
        ]
        assert bws == sorted(bws)
        # mlp=16 sits right at the bandwidth-delay product; random channel
        # assignment leaves ~10-15 % instantaneous imbalance, so expect
        # >= 80 % of peak rather than full saturation.
        assert bws[-1] >= 0.8 * mcdram_archer().peak_bandwidth

    def test_smt_story_emerges(self):
        """The Fig. 5 mechanism: at prefetcher-MLP 13, one thread per core
        leaves MCDRAM under-supplied; doubling the windows recovers it."""
        sim = MemoryEventSimulator(mcdram_archer(), sequential=True)
        one = sim.run(threads=64, mlp=13, requests_per_thread=300, seed=8)
        two = sim.run(threads=128, mlp=13, requests_per_thread=300, seed=8)
        gain = two.bandwidth_bytes_per_s / one.bandwidth_bytes_per_s
        assert 1.05 < gain < 1.45

    def test_validation(self):
        sim = MemoryEventSimulator(ddr4_archer())
        with pytest.raises(ValueError):
            sim.run(threads=0, mlp=1, requests_per_thread=10)
