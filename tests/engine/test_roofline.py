"""Roofline model tests."""

import pytest

from repro.engine.profilephase import AccessPattern, MemoryProfile, Phase
from repro.engine.roofline import RooflineModel
from repro.memory.dram import ddr4_archer
from repro.memory.mcdram import mcdram_archer


@pytest.fixture()
def roofline(machine):
    return RooflineModel(machine, ddr4_archer(), mcdram_archer())


class TestRidges:
    def test_hbm_ridge_left_of_dram_ridge(self, roofline):
        assert roofline.ridge_intensity_hbm() < roofline.ridge_intensity_dram()

    def test_dram_ridge_value(self, roofline, machine):
        expected = machine.peak_dp_gflops * 1e9 / 77e9
        assert roofline.ridge_intensity_dram() == pytest.approx(expected)


class TestAttainable:
    def test_low_intensity_bandwidth_bound(self, roofline):
        got = roofline.attainable_gflops(0.1, 77e9)
        assert got == pytest.approx(0.1 * 77, rel=1e-9)

    def test_high_intensity_compute_bound(self, roofline, machine):
        got = roofline.attainable_gflops(1000.0, 77e9)
        assert got == machine.peak_dp_gflops

    def test_validation(self, roofline):
        with pytest.raises(ValueError):
            roofline.attainable_gflops(0.0, 77e9)


class TestLocate:
    def _profile(self, intensity):
        return MemoryProfile(
            "w",
            (
                Phase(
                    "p",
                    AccessPattern.SEQUENTIAL,
                    traffic_bytes=1e9,
                    flops=intensity * 1e9,
                    footprint_bytes=10**9,
                ),
            ),
        )

    def test_stream_like_kernel_bound_gap_is_4x(self, roofline):
        point = roofline.locate(self._profile(0.1))
        assert point.hbm_speedup_bound == pytest.approx(330 / 77, rel=1e-6)

    def test_compute_kernel_no_hbm_benefit(self, roofline):
        point = roofline.locate(self._profile(1e4))
        assert point.hbm_speedup_bound == pytest.approx(1.0)

    def test_between_ridges_partial_benefit(self, roofline):
        intensity = (
            roofline.ridge_intensity_hbm() + roofline.ridge_intensity_dram()
        ) / 2
        point = roofline.locate(self._profile(intensity))
        assert 1.0 < point.hbm_speedup_bound < 330 / 77
