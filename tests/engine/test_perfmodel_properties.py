"""Property-based invariants of the performance model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.perfmodel import PerformanceModel
from repro.engine.placement import Location, PlacementMix
from repro.engine.profilephase import AccessPattern, MemoryProfile, Phase
from repro.machine.presets import knl7210
from repro.memory.modes import MCDRAMConfig, MemorySystem
from repro.util.units import GB

MACHINE = knl7210()
FLAT = PerformanceModel(MACHINE, MemorySystem(MCDRAMConfig.flat()))
CACHE = PerformanceModel(MACHINE, MemorySystem(MCDRAMConfig.cache()))


def profile(
    traffic_gb: float,
    footprint_gb: float,
    pattern: AccessPattern,
    flops: float = 0.0,
) -> MemoryProfile:
    return MemoryProfile(
        "w",
        (
            Phase(
                "p",
                pattern,
                traffic_bytes=traffic_gb * GB,
                flops=flops,
                footprint_bytes=int(footprint_gb * GB),
                access_bytes=8 if pattern is AccessPattern.RANDOM else 64,
            ),
        ),
    )


traffic_st = st.floats(min_value=0.01, max_value=100.0)
footprint_st = st.floats(min_value=0.01, max_value=90.0)
pattern_st = st.sampled_from(list(AccessPattern))
threads_st = st.sampled_from([64, 128, 192, 256])


class TestTimePositivity:
    @given(traffic_st, footprint_st, pattern_st, threads_st)
    @settings(max_examples=50, deadline=None)
    def test_time_positive_and_finite(self, traffic, footprint, pattern, threads):
        prof = profile(traffic, footprint, pattern)
        run = FLAT.run(prof, PlacementMix.pure(Location.DRAM), threads)
        assert 0 < run.time_ns < float("inf")


class TestMonotonicity:
    @given(footprint_st, pattern_st, threads_st)
    @settings(max_examples=50, deadline=None)
    def test_time_monotone_in_traffic(self, footprint, pattern, threads):
        small = profile(1.0, footprint, pattern)
        large = profile(2.0, footprint, pattern)
        mix = PlacementMix.pure(Location.DRAM)
        assert FLAT.run(small, mix, threads).time_ns <= FLAT.run(
            large, mix, threads
        ).time_ns

    @given(traffic_st, footprint_st, pattern_st)
    @settings(max_examples=50, deadline=None)
    def test_hbm_never_slower_for_sequential(self, traffic, footprint, pattern):
        """Sequential traffic cannot be slower on HBM (higher bandwidth,
        concurrency-limited demand identical)."""
        if footprint > 16.0:
            footprint = 8.0
        prof = profile(traffic, footprint, AccessPattern.SEQUENTIAL)
        hbm = FLAT.run(prof, PlacementMix.pure(Location.HBM), 64)
        dram = FLAT.run(prof, PlacementMix.pure(Location.DRAM), 64)
        assert hbm.time_ns <= dram.time_ns * 1.0001

    @given(traffic_st, st.floats(min_value=0.5, max_value=14.0))
    @settings(max_examples=50, deadline=None)
    def test_dram_never_meaningfully_slower_for_random_at_64(
        self, traffic, footprint
    ):
        """At one thread per core, random access is latency-bound and
        DRAM wins (Fig. 4 bottom).  The paper notes small problems show
        'small performance difference', so sub-2-GB footprints only need
        near-parity; beyond that the ordering must be strict.  (Below
        ~0.5 GB both devices are bank-limited and MCDRAM's extra banks
        win — a regime outside the paper's measurements, so excluded.)"""
        prof = profile(traffic, footprint, AccessPattern.RANDOM)
        dram = FLAT.run(prof, PlacementMix.pure(Location.DRAM), 64)
        hbm = FLAT.run(prof, PlacementMix.pure(Location.HBM), 64)
        if footprint >= 2.0:
            assert dram.time_ns <= hbm.time_ns * 1.0001
        else:
            assert dram.time_ns <= hbm.time_ns * 1.02

    @given(footprint_st)
    @settings(max_examples=30, deadline=None)
    def test_sequential_hbm_time_monotone_in_threads(self, footprint):
        if footprint > 14.0:
            footprint = 10.0
        prof = profile(10.0, footprint, AccessPattern.SEQUENTIAL)
        mix = PlacementMix.pure(Location.HBM)
        times = [FLAT.run(prof, mix, t).time_ns for t in (64, 128, 192, 256)]
        for earlier, later in zip(times, times[1:]):
            assert later <= earlier * 1.0001


class TestMixInterpolation:
    @given(
        st.floats(min_value=0.0, max_value=1.0),
        traffic_st,
        st.floats(min_value=0.1, max_value=14.0),
        pattern_st,
    )
    @settings(max_examples=50, deadline=None)
    def test_mixture_bounded_by_pure_extremes(
        self, hbm_fraction, traffic, footprint, pattern
    ):
        prof = profile(traffic, footprint, pattern)
        pure_d = FLAT.run(prof, PlacementMix.pure(Location.DRAM), 64).time_ns
        pure_h = FLAT.run(prof, PlacementMix.pure(Location.HBM), 64).time_ns
        if hbm_fraction == 0.0:
            mix = PlacementMix.pure(Location.DRAM)
        elif hbm_fraction == 1.0:
            mix = PlacementMix.pure(Location.HBM)
        else:
            mix = PlacementMix.of(hbm=hbm_fraction, dram=1.0 - hbm_fraction)
        mixed = FLAT.run(prof, mix, 64).time_ns
        lo, hi = sorted((pure_d, pure_h))
        # Overlapped devices can beat both extremes (bandwidth adds) but
        # can never be slower than the slower pure placement.
        assert mixed <= hi * 1.0001


class TestCacheModeBounds:
    @given(traffic_st, st.floats(min_value=0.1, max_value=8.0))
    @settings(max_examples=40, deadline=None)
    def test_fitting_cache_mode_between_dram_and_hbm(self, traffic, footprint):
        """Sequential working sets well inside MCDRAM: cache mode is
        slower than flat HBM (protocol overhead) but faster than DRAM."""
        prof = profile(traffic, footprint, AccessPattern.SEQUENTIAL)
        cached = CACHE.run(
            prof, PlacementMix.pure(Location.DRAM_CACHED), 64
        ).time_ns
        dram = FLAT.run(prof, PlacementMix.pure(Location.DRAM), 64).time_ns
        hbm = FLAT.run(prof, PlacementMix.pure(Location.HBM), 64).time_ns
        assert hbm <= cached <= dram
