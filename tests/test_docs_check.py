"""The docs lint (`tools/check_docs.py`) as part of the tier-1 suite.

`make docs-check` runs the script directly; this wrapper makes the same
checks fail `pytest tests/` so documentation drift is caught even when
tests are invoked without the Makefile.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "tools" / "check_docs.py"


def load_check_docs():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        import check_docs
    finally:
        sys.path.pop(0)
    return check_docs


class TestDocsCheck:
    def test_script_passes(self):
        result = subprocess.run(
            [sys.executable, str(SCRIPT)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stderr
        assert "docs-check: OK" in result.stdout

    def test_detects_broken_link(self, tmp_path):
        check_docs = load_check_docs()
        (tmp_path / "docs").mkdir()
        (tmp_path / "README.md").write_text(
            "see [missing](docs/NOPE.md) and [ok](docs/OK.md)\n"
        )
        (tmp_path / "docs" / "OK.md").write_text("fine\n")
        errors = check_docs.check_links(tmp_path)
        assert len(errors) == 1
        assert "NOPE.md" in errors[0]

    def test_skips_external_links_and_anchors(self):
        check_docs = load_check_docs()
        text = (
            "[a](https://example.com) [b](mailto:x@y.z) "
            "[c](#local-anchor) [d](MODEL.md#section-2)"
        )
        assert check_docs.iter_relative_links(text) == ["MODEL.md"]

    def test_cli_flags_include_observability(self):
        check_docs = load_check_docs()
        flags = check_docs.cli_flags()
        assert {"--trace-out", "--metrics-out", "--jobs", "--cache-dir"} <= flags
        assert "--help" not in flags

    def test_detects_undocumented_flag(self, tmp_path):
        check_docs = load_check_docs()
        (tmp_path / "docs").mkdir()
        (tmp_path / "README.md").write_text("only mentions --jobs\n")
        errors = check_docs.check_flags(tmp_path)
        assert any("--trace-out" in error for error in errors)
