"""End-to-end checks of the paper's enumerated contributions and headline
claims (Sections I and VI), exercised through the public API exactly as a
user would."""

import pytest

from repro import (
    ConfigName,
    ExperimentRunner,
    PlacementAdvisor,
)
from repro.engine.calibration import PAPER_CHARACTERIZATION as P
from repro.workloads import (
    DGEMM,
    GUPS,
    Graph500,
    MiniFE,
    StreamBenchmark,
    XSBench,
)


@pytest.fixture(scope="module")
def r():
    return ExperimentRunner()


def metric(r, workload, config, threads=64):
    return r.run(workload, config, threads).metric


class TestAbstractClaims:
    def test_hbm_4x_bandwidth(self, r):
        """'Theoretically, HBM can provide ~4x higher bandwidth.'"""
        s = StreamBenchmark(size_bytes=int(8e9))
        ratio = metric(r, s, ConfigName.HBM) / metric(r, s, ConfigName.DRAM)
        assert 4.0 <= ratio <= 4.5

    def test_regular_apps_up_to_3x(self, r):
        """'applications with regular memory access ... achieving up to 3x
        performance when compared to ... only DRAM.'"""
        w = MiniFE.from_matrix_gb(7.2)
        ratio = metric(r, w, ConfigName.HBM) / metric(r, w, ConfigName.DRAM)
        assert ratio == pytest.approx(3.0, rel=0.1)

    def test_random_apps_degrade_on_hbm(self, r):
        """'applications with random memory access pattern ... may suffer
        from performance degradation when using only MCDRAM.'"""
        for w in (
            GUPS.from_table_gb(8.0),
            Graph500.from_graph_gb(8.8),
            XSBench.from_problem_gb(11.3),
        ):
            assert metric(r, w, ConfigName.HBM) < metric(r, w, ConfigName.DRAM)

    def test_minife_3_8x_with_four_hardware_threads(self, r):
        """'For MiniFE, we observe a 3.8x performance improvement with
        respect to the performance obtained with only DRAM when we use
        four hardware threads per core.'"""
        w = MiniFE.from_matrix_gb(7.2)
        ratio = metric(r, w, ConfigName.HBM, 256) / metric(
            r, w, ConfigName.DRAM, 64
        )
        assert ratio == pytest.approx(P.minife_ht_speedup, rel=0.15)


class TestContribution2_QuantifiedImpacts:
    def test_dgemm_2x(self, r):
        w = DGEMM.from_array_gb(6.0)
        ratio = metric(r, w, ConfigName.HBM) / metric(r, w, ConfigName.DRAM)
        assert ratio == pytest.approx(P.dgemm_hbm_speedup, rel=0.1)

    def test_cache_mode_between_extremes_for_regular_apps(self, r):
        """'cache mode ... performance in this mode generally fall in
        between the highest and the lowest.'"""
        w = MiniFE.from_matrix_gb(7.2)
        dram = metric(r, w, ConfigName.DRAM)
        hbm = metric(r, w, ConfigName.HBM)
        cache = metric(r, w, ConfigName.CACHE)
        assert dram < cache < hbm

    def test_cache_benefit_decreases_with_problem_size(self, r):
        improvements = []
        for gb in (3.6, 14.4, 28.8):
            w = MiniFE.from_matrix_gb(gb)
            improvements.append(
                metric(r, w, ConfigName.CACHE) / metric(r, w, ConfigName.DRAM)
            )
        assert improvements[0] > improvements[1] > improvements[2]
        assert improvements[2] == pytest.approx(1.05, abs=0.15)


class TestContribution4_LatencyObstacle:
    def test_hbm_latency_18_percent_higher(self):
        assert P.hbm_latency_ns / P.dram_latency_ns == pytest.approx(
            1.18, abs=0.01
        )

    def test_graph500_cache_gap_at_scale(self, r):
        w = Graph500.from_graph_gb(35.0)
        ratio = metric(r, w, ConfigName.DRAM) / metric(r, w, ConfigName.CACHE)
        assert ratio == pytest.approx(P.graph500_dram_vs_cache, rel=0.15)


class TestContribution5_HardwareThreads:
    def test_stream_needs_smt_for_hbm_peak(self, r):
        s = StreamBenchmark(size_bytes=int(4e9))
        one = metric(r, s, ConfigName.HBM, 64)
        two = metric(r, s, ConfigName.HBM, 128)
        assert two / one == pytest.approx(P.hbm_smt_gain, rel=0.02)
        assert two == pytest.approx(P.hbm_stream_max_gbs * 1e9, rel=0.01)

    def test_xsbench_best_config_flips(self, r):
        w = XSBench.from_problem_gb(11.3)
        assert metric(r, w, ConfigName.DRAM, 64) > metric(r, w, ConfigName.HBM, 64)
        assert metric(r, w, ConfigName.HBM, 256) > metric(
            r, w, ConfigName.DRAM, 256
        )

    def test_xsbench_smt_gains(self, r):
        w = XSBench.from_problem_gb(11.3)
        hbm_gain = metric(r, w, ConfigName.HBM, 256) / metric(
            r, w, ConfigName.HBM, 64
        )
        dram_gain = metric(r, w, ConfigName.DRAM, 256) / metric(
            r, w, ConfigName.DRAM, 64
        )
        assert hbm_gain == pytest.approx(P.xsbench_ht_speedup_hbm, rel=0.1)
        assert dram_gain == pytest.approx(P.xsbench_ht_speedup_dram, rel=0.1)


class TestContribution6_Guidelines:
    def test_advisor_reproduces_section_vi(self, r):
        advisor = PlacementAdvisor(r)
        # Sequential, fits -> HBM.
        assert advisor.recommend(MiniFE.from_matrix_gb(7.2)).best is ConfigName.HBM
        # Sequential, comparable to capacity -> cache mode.
        assert (
            advisor.recommend(StreamBenchmark(size_bytes=int(20e9))).best
            is ConfigName.CACHE
        )
        # Random -> DRAM.
        assert advisor.recommend(GUPS.from_table_gb(4.0)).best is ConfigName.DRAM
        # Random + SMT + fits -> HBM becomes optimal.
        assert (
            advisor.recommend(XSBench.from_problem_gb(11.3), 256).best
            is ConfigName.HBM
        )


class TestMissingMeasurements:
    """The figures' absent bars are modelled failures, not omissions."""

    def test_hbm_bars_absent_beyond_capacity(self, r):
        for w in (
            DGEMM.from_array_gb(24.0),
            MiniFE.from_matrix_gb(28.8),
            GUPS.from_table_gb(32.0),
            Graph500.from_graph_gb(35.0),
            XSBench.from_problem_gb(90.0),
        ):
            record = r.run(w, ConfigName.HBM)
            assert not record.feasible

    def test_dgemm_256_threads_absent(self, r):
        for config in ConfigName.paper_trio():
            assert not r.run(DGEMM.from_array_gb(6.0), config, 256).feasible


class TestFunctionalFaces:
    """Every Table I application really runs and self-validates."""

    @pytest.mark.parametrize(
        "workload",
        [
            DGEMM(n=40),
            MiniFE(nx=5),
            GUPS(log2_entries=8),
            Graph500(scale=7, n_roots=4),
            XSBench.small(),
            StreamBenchmark(size_bytes=3 * 8 * 512),
        ],
        ids=lambda w: w.spec.name,
    )
    def test_executes_and_verifies(self, workload):
        assert workload.execute(seed=123).verified
