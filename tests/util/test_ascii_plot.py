"""AsciiChart tests."""

import math

import pytest

from repro.util.ascii_plot import AsciiChart


class TestValidation:
    def test_min_dimensions(self):
        with pytest.raises(ValueError):
            AsciiChart(width=4, height=2)

    def test_series_length_mismatch(self):
        chart = AsciiChart()
        with pytest.raises(ValueError):
            chart.add_series("s", [1, 2], [1])

    def test_empty_series_rejected(self):
        chart = AsciiChart()
        with pytest.raises(ValueError):
            chart.add_series("s", [], [])

    def test_render_without_series(self):
        with pytest.raises(ValueError):
            AsciiChart().render()

    def test_too_many_series(self):
        chart = AsciiChart()
        for i in range(len(AsciiChart.GLYPHS)):
            chart.add_series(f"s{i}", [0, 1], [0, 1])
        with pytest.raises(ValueError):
            chart.add_series("extra", [0, 1], [0, 1])


class TestRendering:
    def test_legend_present(self):
        chart = AsciiChart(title="t")
        chart.add_series("dram", [1, 2, 3], [1, 2, 3])
        text = chart.render()
        assert "*=dram" in text
        assert text.splitlines()[0] == "t"

    def test_glyphs_plotted(self):
        chart = AsciiChart()
        chart.add_series("a", [0, 1], [0.0, 1.0])
        assert "*" in chart.render()

    def test_nan_points_skipped(self):
        chart = AsciiChart()
        chart.add_series("a", [0, 1, 2], [1.0, math.nan, 3.0])
        grid = "\n".join(
            line for line in chart.render().splitlines() if "|" in line
        )
        assert grid.count("*") == 2

    def test_all_nan_rejected(self):
        chart = AsciiChart()
        chart.add_series("a", [0, 1], [math.nan, math.nan])
        with pytest.raises(ValueError):
            chart.render()

    def test_flat_series_renders(self):
        chart = AsciiChart()
        chart.add_series("flat", [0, 1, 2], [5.0, 5.0, 5.0])
        assert "*" in chart.render()

    def test_logx(self):
        chart = AsciiChart(logx=True, width=20, height=5)
        chart.add_series("a", [1, 10, 100], [1, 2, 3])
        text = chart.render()
        # log spacing puts the middle point near the middle column.
        star_cols = [
            line.index("*")
            for line in text.splitlines()
            if "*" in line and "|" in line
        ]
        assert len(star_cols) == 3

    def test_axis_labels(self):
        chart = AsciiChart(xlabel="size", ylabel="bw")
        chart.add_series("a", [0, 1], [0, 10])
        text = chart.render()
        assert "size" in text
        assert "bw" in text
