"""Seeded RNG stream tests."""

from hypothesis import given, strategies as st

from repro.util.prng import DEFAULT_SEED, derive_seed, make_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_labels_matter(self):
        assert derive_seed(1, "gups") != derive_seed(1, "graph500")

    def test_label_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_no_concat_ambiguity(self):
        # ("ab", "c") must differ from ("a", "bc").
        assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")

    def test_63_bit_range(self):
        s = derive_seed(123456789, "x")
        assert 0 <= s < 2**63

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_any_base_seed(self, base):
        assert 0 <= derive_seed(base, "w") < 2**63


class TestMakeRng:
    def test_default_seed(self):
        a = make_rng(None, "x").integers(0, 1000, 10)
        b = make_rng(DEFAULT_SEED, "x").integers(0, 1000, 10)
        assert (a == b).all()

    def test_independent_streams(self):
        a = make_rng(7, "stream-a").random(100)
        b = make_rng(7, "stream-b").random(100)
        assert not (a == b).any()

    def test_reproducible(self):
        assert (
            make_rng(42, "k").random(5) == make_rng(42, "k").random(5)
        ).all()
