"""TextTable rendering tests."""

import pytest

from repro.util.tables import TextTable


class TestConstruction:
    def test_needs_columns(self):
        with pytest.raises(ValueError):
            TextTable([])

    def test_align_length_checked(self):
        with pytest.raises(ValueError):
            TextTable(["a", "b"], align=["l"])

    def test_align_values_checked(self):
        with pytest.raises(ValueError):
            TextTable(["a"], align=["x"])


class TestRows:
    def test_row_width_checked(self):
        t = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_none_renders_dash(self):
        t = TextTable(["a"])
        t.add_row([None])
        assert "-" in t.render().splitlines()[-1]

    def test_nrows(self):
        t = TextTable(["a"])
        t.add_rows([[1], [2], [3]])
        assert t.nrows == 3


class TestRendering:
    def test_header_and_separator(self):
        t = TextTable(["size", "bw"], title="Fig")
        t.add_row(["8 GB", "260"])
        lines = t.render().splitlines()
        assert lines[0] == "Fig"
        assert "size" in lines[1] and "bw" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        assert "8 GB" in lines[3]

    def test_alignment(self):
        t = TextTable(["x", "y"], align=["l", "r"])
        t.add_row(["a", "1"])
        t.add_row(["bb", "22"])
        body = t.render().splitlines()
        assert body[-1].startswith("bb")
        assert body[-1].rstrip().endswith("22")

    def test_str_matches_render(self):
        t = TextTable(["x"])
        t.add_row(["v"])
        assert str(t) == t.render()

    def test_column_width_grows_with_content(self):
        t = TextTable(["c"])
        t.add_row(["a-very-long-cell-value"])
        lines = t.render().splitlines()
        assert len(lines[1]) >= len("a-very-long-cell-value")
