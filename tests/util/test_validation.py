"""Validation helper tests."""

import pytest

from repro.util.validation import (
    check_fraction,
    check_in,
    check_non_negative,
    check_positive,
    check_type,
)


class TestCheckPositive:
    def test_accepts(self):
        assert check_positive("x", 1.5) == 1.5

    @pytest.mark.parametrize("bad", [0, -1, -0.001])
    def test_rejects(self, bad):
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", bad)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -1e-9)


class TestCheckFraction:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts(self, ok):
        assert check_fraction("f", ok) == ok

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            check_fraction("f", bad)


class TestCheckIn:
    def test_accepts(self):
        assert check_in("mode", "flat", {"flat", "cache"}) == "flat"

    def test_rejects(self):
        with pytest.raises(ValueError, match="mode"):
            check_in("mode", "hybrid", {"flat", "cache"})


class TestCheckType:
    def test_accepts(self):
        assert check_type("n", 5, int) == 5

    def test_rejects(self):
        with pytest.raises(TypeError, match="n must be"):
            check_type("n", "5", int)
