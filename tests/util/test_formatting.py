"""Formatting helper tests."""

import math

import pytest

from repro.util.formatting import (
    format_quantity,
    format_rate,
    format_ratio,
    format_time_ns,
    si_prefix,
)


class TestSiPrefix:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, (0.0, "")),
            (2.5e9, (2.5, "G")),
            (1.07e-2, (10.7, "m")),
            (330e9, (330.0, "G")),
            (5, (5.0, "")),
            (1.5e-7, (150.0, "n")),
        ],
    )
    def test_scaling(self, value, expected):
        scaled, prefix = si_prefix(value)
        assert scaled == pytest.approx(expected[0])
        assert prefix == expected[1]

    def test_negative(self):
        scaled, prefix = si_prefix(-3.3e6)
        assert scaled == pytest.approx(-3.3)
        assert prefix == "M"


class TestFormatQuantity:
    def test_teps(self):
        assert format_quantity(2.5e8, "TEPS") == "250 MTEPS"

    def test_nan(self):
        assert format_quantity(float("nan")) == "nan"

    def test_plain(self):
        assert format_quantity(42.0) == "42"


class TestFormatRate:
    def test_stream_number(self):
        assert format_rate(330e9) == "330.0 GB/s"


class TestFormatTime:
    @pytest.mark.parametrize(
        "ns,expected",
        [
            (130.4, "130.4 ns"),
            (1.54e3, "1.5 µs"),
            (2.5e6, "2.5 ms"),
            (3.1e9, "3.1 s"),
        ],
    )
    def test_scales(self, ns, expected):
        assert format_time_ns(ns) == expected

    def test_nan(self):
        assert format_time_ns(math.nan) == "nan"


class TestFormatRatio:
    def test_paper_style(self):
        assert format_ratio(3.8) == "3.80x"
        assert format_ratio(1.27) == "1.27x"
