"""Unit conversion tests."""

import pytest
from hypothesis import given, strategies as st

from repro.util.units import (
    CACHE_LINE,
    GB,
    GiB,
    KiB,
    MiB,
    bytes_to_gb,
    bytes_to_gib,
    format_size,
    gb_to_bytes,
    gib_to_bytes,
    parse_size,
)


class TestConstants:
    def test_binary_units(self):
        assert KiB == 1024
        assert MiB == 1024**2
        assert GiB == 1024**3

    def test_decimal_gb(self):
        assert GB == 10**9

    def test_cache_line_is_knl(self):
        assert CACHE_LINE == 64


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("0", 0),
            ("64", 64),
            ("1 KiB", 1024),
            ("1KB", 1000),
            ("2 MiB", 2 * MiB),
            ("1.5 GiB", int(1.5 * GiB)),
            ("11.4 GB", 11_400_000_000),
            ("256kb", 256_000),
            ("1 tib", 1 << 40),
        ],
    )
    def test_parses(self, text, expected):
        assert parse_size(text) == expected

    def test_passthrough_numbers(self):
        assert parse_size(4096) == 4096
        assert parse_size(1.5) == 1

    @pytest.mark.parametrize("bad", ["", "GB", "1.2.3 GB", "-5 GB", "five"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_size(bad)

    def test_rejects_negative_number(self):
        with pytest.raises(ValueError):
            parse_size(-1)


class TestFormatSize:
    def test_bytes(self):
        assert format_size(123) == "123 B"

    def test_binary(self):
        assert format_size(1536, precision=1) == "1.5 KiB"
        assert format_size(16 * GiB) == "16.0 GiB"

    def test_decimal(self):
        assert format_size(11_400_000_000, binary=False) == "11.4 GB"

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            format_size(-1)


class TestConversions:
    def test_gib_round_trip(self):
        assert bytes_to_gib(gib_to_bytes(16.0)) == pytest.approx(16.0)

    def test_gb_round_trip(self):
        assert bytes_to_gb(gb_to_bytes(11.4)) == pytest.approx(11.4)

    def test_gib_vs_gb_differ(self):
        # The GiB/GB distinction matters: 16 GiB is ~17.18 GB.
        assert gib_to_bytes(16) / gb_to_bytes(16) == pytest.approx(1.0737, rel=1e-3)

    @given(st.floats(min_value=0, max_value=1e6, allow_nan=False))
    def test_gib_round_trip_property(self, gib):
        assert bytes_to_gib(gib_to_bytes(gib)) == pytest.approx(gib, abs=1e-9)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gib_to_bytes(-1)
        with pytest.raises(ValueError):
            gb_to_bytes(-0.1)


class TestParseFormatRoundTrip:
    @given(st.integers(min_value=0, max_value=2**50))
    def test_parse_of_format_is_close(self, n):
        # format truncates precision; round-trip must stay within 5%.
        text = format_size(n, precision=3)
        parsed = parse_size(text)
        assert parsed == pytest.approx(n, rel=0.05, abs=1)
