"""The single envelope construction point (`repro.api.envelope`).

Every body the service emits is stamped here; these tests pin the
stamping contract so a schema bump cannot silently leave a stale or
duplicated stamp behind.
"""

from __future__ import annotations

import json

import pytest

from repro.api.envelope import error_envelope, success_envelope
from repro.api.errors import (
    ApiError,
    CapacityError,
    InfeasiblePlanError,
    error_from_info,
    error_types,
)
from repro.api.types import SCHEMA_VERSION, ErrorInfo


class TestSuccessEnvelope:
    def test_stamps_current_schema(self):
        body = success_envelope(results=[1, 2], meta={"queries": 2})
        assert body == {
            "schema_version": SCHEMA_VERSION,
            "results": [1, 2],
            "meta": {"queries": 2},
        }

    def test_empty_fields_is_just_the_stamp(self):
        assert success_envelope() == {"schema_version": SCHEMA_VERSION}

    def test_caller_supplied_stamp_rejected(self):
        with pytest.raises(ValueError, match="stamps schema_version itself"):
            success_envelope(schema_version=1)

    def test_json_ready(self):
        body = success_envelope(plan={"objective": "runtime"})
        assert json.loads(json.dumps(body)) == body


class TestErrorEnvelope:
    def test_typed_error_serializes_info(self):
        exc = CapacityError("queue full", details={"max_queue": 4})
        body = error_envelope(exc)
        assert body["schema_version"] == SCHEMA_VERSION
        assert body["error"]["code"] == "capacity"
        assert body["error"]["message"] == "queue full"
        assert body["error"]["details"] == {"max_queue": 4}

    def test_bare_code_and_message(self):
        body = error_envelope("not_found", "no route /v1/nope")
        assert body == {
            "schema_version": SCHEMA_VERSION,
            "error": {"code": "not_found", "message": "no route /v1/nope"},
        }

    def test_bare_code_without_message_rejected(self):
        with pytest.raises(ValueError, match="needs a message"):
            error_envelope("not_found")

    def test_round_trips_through_client_rehydration(self):
        exc = InfeasiblePlanError("no packing", details={"item": 0})
        body = json.loads(json.dumps(error_envelope(exc)))
        rehydrated = error_from_info(ErrorInfo.from_dict(body["error"]))
        assert isinstance(rehydrated, InfeasiblePlanError)
        assert rehydrated.details == {"item": 0}


class TestErrorTaxonomy:
    def test_plan_codes_registered(self):
        codes = error_types()
        for code in ("plan", "empty_mix", "unknown_machine", "infeasible_plan"):
            assert code in codes, f"{code} missing from the wire taxonomy"
            assert issubclass(codes[code], ApiError)

    def test_plan_statuses(self):
        codes = error_types()
        assert codes["plan"].http_status == 400
        assert codes["empty_mix"].http_status == 400
        assert codes["unknown_machine"].http_status == 404
        assert codes["infeasible_plan"].http_status == 409

    def test_plan_errors_double_as_stdlib_exceptions(self):
        codes = error_types()
        assert issubclass(codes["empty_mix"], ValueError)
        assert issubclass(codes["unknown_machine"], LookupError)
        assert issubclass(codes["infeasible_plan"], RuntimeError)
