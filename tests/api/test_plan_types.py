"""Planner wire types: canonicalization, round-trips, rejection.

Mirrors the `Query`/`QueryGrid` contract suite: ``to_dict``/
``from_dict`` are exact inverses over JSON-ready dictionaries, and
hypothesis drives the round-trip over the whole generator space.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.api.errors import (
    EmptyMixError,
    SchemaVersionError,
    UnknownMachineError,
    ValidationError,
)
from repro.api.plan import (
    OBJECTIVES,
    MachineLoad,
    PlanAssignment,
    PlanRequest,
    PlanResult,
    PoolEntry,
    TrafficItem,
)
from repro.api.types import MACHINE_NAMES, SCHEMA_VERSION

WORKLOADS = ("dgemm", "minife", "gups", "graph500", "xsbench")
CONFIGS = ("DRAM", "HBM", "Cache Mode")

sizes = st.floats(
    min_value=0.5, max_value=64.0, allow_nan=False, allow_infinity=False
)
weights = st.floats(
    min_value=1e-6, max_value=10.0, allow_nan=False, allow_infinity=False
)

items = st.builds(
    TrafficItem,
    workload=st.sampled_from(WORKLOADS),
    size_gb=sizes,
    num_threads=st.integers(min_value=1, max_value=256),
    weight=weights,
)

pool_entries = st.builds(
    PoolEntry,
    machine=st.sampled_from(sorted(MACHINE_NAMES)),
    nodes=st.integers(min_value=1, max_value=512),
    configs=st.lists(
        st.sampled_from(CONFIGS), unique=True, max_size=len(CONFIGS)
    ).map(tuple),
)


def _unique_machines(entries):
    seen, out = set(), []
    for entry in entries:
        if entry.machine not in seen:
            seen.add(entry.machine)
            out.append(entry)
    return tuple(out)


requests = st.builds(
    PlanRequest,
    mix=st.lists(items, min_size=1, max_size=6).map(tuple),
    pool=st.lists(pool_entries, min_size=1, max_size=4).map(_unique_machines),
    objective=st.sampled_from(OBJECTIVES),
)


class TestTrafficItem:
    def test_canonicalization(self):
        item = TrafficItem(workload="DGEMM", size_gb=4, weight=2)
        assert item.workload == "dgemm"
        assert item.size_gb == 4.0
        assert item.weight == 2.0
        assert item.num_threads == 64

    @given(item=items)
    def test_round_trip(self, item):
        wire = json.loads(json.dumps(item.to_dict()))
        assert TrafficItem.from_dict(wire) == item

    @pytest.mark.parametrize(
        "patch",
        [
            {"size_gb": -1.0},
            {"size_gb": float("nan")},
            {"weight": 0.0},
            {"weight": float("inf")},
            {"num_threads": 0},
            {"workload": ""},
            {"tenant": "a"},
        ],
    )
    def test_invalid_fields_raise(self, patch):
        data = {"workload": "dgemm", "size_gb": 4.0}
        data.update(patch)
        with pytest.raises(ValidationError):
            TrafficItem.from_dict(data)


class TestPoolEntry:
    def test_canonicalization(self):
        entry = PoolEntry(machine="KNL7210", nodes=8, configs=["cache"])
        assert entry.machine == "knl7210"
        assert entry.configs == ("Cache Mode",)

    def test_effective_configs_default_to_paper_trio(self):
        assert PoolEntry(machine="knl7210", nodes=1).effective_configs() == (
            "DRAM",
            "HBM",
            "Cache Mode",
        )

    def test_explicit_configs_win(self):
        entry = PoolEntry(machine="knl7210", nodes=1, configs=("HBM",))
        assert entry.effective_configs() == ("HBM",)

    @given(entry=pool_entries)
    def test_round_trip(self, entry):
        wire = json.loads(json.dumps(entry.to_dict()))
        assert PoolEntry.from_dict(wire) == entry

    def test_unknown_machine_is_the_plan_taxonomy(self):
        with pytest.raises(UnknownMachineError) as excinfo:
            PoolEntry(machine="epyc", nodes=4)
        assert "available" in excinfo.value.details

    def test_duplicate_configs_raise(self):
        with pytest.raises(ValidationError, match="duplicate configs"):
            PoolEntry(machine="knl7210", nodes=4, configs=("HBM", "hbm"))


class TestPlanRequest:
    @given(request=requests)
    def test_round_trip(self, request):
        wire = json.loads(json.dumps(request.to_dict()))
        assert PlanRequest.from_dict(wire) == request

    @given(request=requests)
    def test_canonical_key_stable_and_json(self, request):
        key = request.canonical_key()
        assert key == request.canonical_key()
        assert (
            PlanRequest.from_dict(json.loads(key)).canonical_key() == key
        )

    @given(request=requests)
    def test_candidate_count_matches_enumeration(self, request):
        expected = len(request.mix) * sum(
            len(entry.effective_configs()) for entry in request.pool
        )
        assert request.candidate_count() == expected

    def test_equivalent_spellings_compare_equal(self):
        raw = {
            "mix": [{"workload": "MiniFE", "size_gb": 7.2}],
            "pool": [{"machine": "KNL7210", "nodes": 4, "configs": ["CACHE"]}],
        }
        canon = {
            "mix": [{"workload": "minife", "size_gb": 7.2}],
            "pool": [
                {"machine": "knl7210", "nodes": 4, "configs": ["Cache Mode"]}
            ],
            "objective": "RUNTIME",
        }
        a, b = PlanRequest.from_dict(raw), PlanRequest.from_dict(canon)
        assert a == b
        assert a.canonical_key() == b.canonical_key()

    def test_empty_mix_raises_typed(self):
        with pytest.raises(EmptyMixError):
            PlanRequest.from_dict(
                {"mix": [], "pool": [{"machine": "knl7210", "nodes": 1}]}
            )

    def test_empty_pool_raises_typed(self):
        with pytest.raises(EmptyMixError):
            PlanRequest.from_dict(
                {"mix": [{"workload": "dgemm", "size_gb": 4.0}], "pool": []}
            )

    def test_duplicate_pool_machines_raise(self):
        with pytest.raises(ValidationError, match="duplicate pool machines"):
            PlanRequest.from_dict(
                {
                    "mix": [{"workload": "dgemm", "size_gb": 4.0}],
                    "pool": [
                        {"machine": "knl7210", "nodes": 1},
                        {"machine": "KNL7210", "nodes": 2},
                    ],
                }
            )

    def test_bad_objective_raises(self):
        with pytest.raises(ValidationError, match="unknown objective"):
            PlanRequest.from_dict(
                {
                    "mix": [{"workload": "dgemm", "size_gb": 4.0}],
                    "pool": [{"machine": "knl7210", "nodes": 1}],
                    "objective": "latency",
                }
            )


def _assignment(**overrides):
    fields = {
        "item": TrafficItem(workload="dgemm", size_gb=4.0, weight=0.001),
        "machine": "knl7210",
        "config": "HBM",
        "time_ns": 2.5e9,
        "metric": 1.0e12,
        "metric_name": "FLOPS",
        "metric_unit": "flop/s",
        "load_nodes": 0.001 * 2.5,
        "energy_j": 123.0,
    }
    fields.update(overrides)
    return PlanAssignment(**fields)


class TestPlanResult:
    def _result(self):
        assignment = _assignment()
        return PlanResult(
            assignments=(assignment,),
            objective="runtime",
            objective_value=assignment.load_nodes,
            loads=(
                MachineLoad(
                    machine="knl7210",
                    nodes=4,
                    load_nodes=assignment.load_nodes,
                ),
            ),
        )

    def test_round_trip(self):
        result = self._result()
        wire = json.loads(json.dumps(result.to_dict()))
        assert PlanResult.from_dict(wire) == result
        assert wire["schema_version"] == SCHEMA_VERSION

    def test_time_s_and_utilization_properties(self):
        result = self._result()
        assert result.assignments[0].time_s == pytest.approx(2.5)
        assert result.loads[0].utilization == pytest.approx(
            result.loads[0].load_nodes / 4
        )

    def test_other_schema_rejected(self):
        wire = self._result().to_dict()
        wire["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaVersionError):
            PlanResult.from_dict(wire)

    def test_downlevel_schema_accepted(self):
        wire = self._result().to_dict()
        wire["schema_version"] = 1
        assert PlanResult.from_dict(wire).schema_version == 1

    def test_negative_load_rejected(self):
        with pytest.raises(ValidationError):
            _assignment(load_nodes=-0.5)
