"""The wire types: canonicalization, round-trips, schema negotiation.

``to_dict``/``from_dict`` must be exact inverses and the dictionaries
JSON-ready — the service, the client and the cache all rely on it.
"""

from __future__ import annotations

import json

import pytest

from repro.api.errors import SchemaVersionError, ValidationError
from repro.api.types import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    ErrorInfo,
    PredictionResult,
    Query,
    QueryGrid,
    check_schema_version,
)


class TestQuery:
    def test_canonicalization(self):
        query = Query(
            workload="DGEMM", size_gb=4, config="cache", machine="KNL7210"
        )
        assert query.workload == "dgemm"
        assert query.size_gb == 4.0
        assert query.config == "Cache Mode"
        assert query.machine == "knl7210"

    def test_equivalent_spellings_compare_equal(self):
        a = Query(workload="minife", size_gb=7.2, config="CACHE")
        b = Query(workload="MiniFE", size_gb=7.2, config="Cache Mode")
        assert a == b
        assert hash(a) == hash(b)

    def test_round_trip_is_json_ready(self):
        query = Query(
            workload="xsbench", size_gb=2.5, config="HBM", num_threads=128
        )
        wire = json.loads(json.dumps(query.to_dict()))
        assert Query.from_dict(wire) == query

    def test_defaults(self):
        query = Query.from_dict(
            {"workload": "dgemm", "size_gb": 4.0, "config": "DRAM"}
        )
        assert query.num_threads == 64
        assert query.machine == "knl7210"

    @pytest.mark.parametrize(
        "patch",
        [
            {"size_gb": -1.0},
            {"size_gb": float("nan")},
            {"size_gb": float("inf")},
            {"size_gb": True},
            {"num_threads": 0},
            {"num_threads": 2.5},
            {"config": "Quantum Mode"},
            {"machine": "epyc"},
            {"workload": ""},
        ],
    )
    def test_invalid_fields_raise(self, patch):
        data = {"workload": "dgemm", "size_gb": 4.0, "config": "DRAM"}
        data.update(patch)
        with pytest.raises(ValidationError):
            Query.from_dict(data)

    def test_unknown_and_missing_fields_raise(self):
        with pytest.raises(ValidationError, match="unknown field"):
            Query.from_dict(
                {
                    "workload": "dgemm",
                    "size_gb": 4.0,
                    "config": "DRAM",
                    "tenant": "a",
                }
            )
        with pytest.raises(ValidationError, match="missing required"):
            Query.from_dict({"workload": "dgemm", "size_gb": 4.0})


class TestQueryGrid:
    def test_expand_is_workload_major(self):
        grid = QueryGrid(
            workloads=("dgemm", "minife"),
            sizes_gb=(2.0, 4.0),
            configs=("DRAM", "HBM"),
            num_threads=(32, 64),
        )
        points = grid.expand()
        assert len(points) == len(grid) == 16
        assert points[0] == Query(
            workload="dgemm", size_gb=2.0, config="DRAM", num_threads=32
        )
        # threads vary fastest, workloads slowest
        assert points[1].num_threads == 64
        assert points[8].workload == "minife"

    def test_round_trip(self):
        grid = QueryGrid(
            workloads=("xsbench",), sizes_gb=(2.5,), configs=("cache",)
        )
        wire = json.loads(json.dumps(grid.to_dict()))
        assert QueryGrid.from_dict(wire) == grid

    def test_empty_axis_raises(self):
        with pytest.raises(ValidationError, match="must not be empty"):
            QueryGrid(workloads=(), sizes_gb=(2.0,), configs=("DRAM",))

    def test_string_axis_raises(self):
        with pytest.raises(ValidationError, match="must be a list"):
            QueryGrid(
                workloads="dgemm", sizes_gb=(2.0,), configs=("DRAM",)
            )


class TestPredictionResult:
    def _result(self, **overrides):
        fields = {
            "query": Query(workload="dgemm", size_gb=4.0, config="HBM"),
            "metric": 1.25e12,
            "metric_name": "FLOPS",
            "metric_unit": "flop/s",
            "time_ns": 3.5e9,
        }
        fields.update(overrides)
        return PredictionResult(**fields)

    def test_round_trip_feasible(self):
        result = self._result()
        wire = json.loads(json.dumps(result.to_dict()))
        assert PredictionResult.from_dict(wire) == result
        assert result.feasible

    def test_round_trip_infeasible(self):
        result = self._result(
            metric=None,
            time_ns=None,
            error=ErrorInfo(
                code="infeasible_config",
                message="footprint exceeds HBM",
                details={"size_gb": 32.0},
            ),
        )
        wire = json.loads(json.dumps(result.to_dict()))
        assert PredictionResult.from_dict(wire) == result
        assert not result.feasible

    def test_bad_metric_raises(self):
        wire = self._result().to_dict()
        wire["metric"] = "fast"
        with pytest.raises(ValidationError):
            PredictionResult.from_dict(wire)


class TestSchemaNegotiation:
    def test_missing_version_means_current(self):
        assert check_schema_version(None) == SCHEMA_VERSION

    def test_current_version_accepted(self):
        assert check_schema_version(SCHEMA_VERSION) == SCHEMA_VERSION

    def test_every_supported_version_accepted(self):
        for version in SUPPORTED_SCHEMA_VERSIONS:
            assert check_schema_version(version) == version

    def test_other_version_rejected(self):
        with pytest.raises(SchemaVersionError) as excinfo:
            check_schema_version(SCHEMA_VERSION + 1)
        assert excinfo.value.details["supported"] == list(
            SUPPORTED_SCHEMA_VERSIONS
        )

    @pytest.mark.parametrize("value", [True, "1", 1.0])
    def test_non_integer_version_rejected(self, value):
        with pytest.raises(ValidationError):
            check_schema_version(value)

    def test_result_from_other_schema_rejected(self):
        wire = PredictionResult(
            query=Query(workload="dgemm", size_gb=4.0, config="HBM"),
            metric=1.0,
            metric_name="FLOPS",
            metric_unit="flop/s",
        ).to_dict()
        wire["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaVersionError):
            PredictionResult.from_dict(wire)


class TestErrorInfo:
    def test_round_trip_with_details(self):
        info = ErrorInfo(
            code="capacity", message="queue full", details={"max_queue": 4}
        )
        assert ErrorInfo.from_dict(json.loads(json.dumps(info.to_dict()))) == info

    def test_details_omitted_when_empty(self):
        assert "details" not in ErrorInfo(code="x", message="y").to_dict()
