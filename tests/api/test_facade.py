"""The Predictor facade: identity with the legacy paths, typed boundaries.

The facade is the oracle of the serving layer — every batched, cached or
served answer must be bit-identical to ``Predictor.predict`` — so these
tests pin the facade itself against the historical entry points first.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import (
    Predictor,
    Query,
    QueryGrid,
    UnknownWorkloadError,
    ValidationError,
    compare_configs,
    machine_preset,
    sized_workload,
)
from repro.core.configs import ConfigName, make_config
from repro.core.runner import ExperimentRunner
from repro.workloads.registry import FROM_GB


@pytest.fixture(scope="module")
def predictor():
    p = Predictor()
    yield p
    p.close()


class TestScalarIdentity:
    def test_predict_matches_legacy_runner(self, predictor):
        query = Query(
            workload="minife", size_gb=7.2, config="Cache Mode", num_threads=64
        )
        result = predictor.predict(query)
        record = ExperimentRunner().run(
            FROM_GB["minife"](7.2), make_config(ConfigName("Cache Mode")), 64
        )
        assert result.metric == record.metric
        assert result.metric_name == record.metric_name
        assert result.metric_unit == record.metric_unit
        assert result.time_ns == record.run_result.time_ns

    def test_predict_many_matches_individual_predicts(self, predictor):
        queries = [
            Query(workload=w, size_gb=s, config=c, num_threads=t)
            for w, s in (("dgemm", 4.0), ("xsbench", 2.5))
            for c in ("DRAM", "HBM")
            for t in (32, 64)
        ]
        batched = predictor.predict_many(queries)
        oracle = Predictor()
        for query, result in zip(queries, batched):
            assert result == oracle.predict(query)
        oracle.close()

    def test_predict_grid_equals_expanded_many(self, predictor):
        grid = QueryGrid(
            workloads=("dgemm",),
            sizes_gb=(2.0, 4.0),
            configs=("DRAM", "HBM"),
            num_threads=(64,),
        )
        assert predictor.predict_grid(grid) == predictor.predict_many(
            list(grid.expand())
        )


class TestTypedBoundary:
    def test_infeasible_cell_is_data_not_exception(self, predictor):
        result = predictor.predict(
            Query(workload="gups", size_gb=32.0, config="HBM")
        )
        assert not result.feasible
        assert result.metric is None
        assert result.error is not None
        assert result.error.code == "infeasible_config"

    def test_unknown_workload_raises(self, predictor):
        with pytest.raises(UnknownWorkloadError):
            predictor.predict(
                Query(workload="linpack", size_gb=4.0, config="DRAM")
            )

    def test_impossible_thread_count_raises(self, predictor):
        with pytest.raises(ValidationError):
            predictor.predict(
                Query(
                    workload="dgemm",
                    size_gb=4.0,
                    config="DRAM",
                    num_threads=100_000,
                )
            )

    def test_unknown_machine_preset_raises(self):
        with pytest.raises(ValidationError):
            machine_preset("epyc")
        with pytest.raises(UnknownWorkloadError):
            sized_workload("linpack", 4.0)


class TestCacheKey:
    def test_equivalent_spellings_share_a_key(self, predictor):
        a = predictor.cache_key(
            Query(workload="MiniFE", size_gb=7.2, config="CACHE")
        )
        b = predictor.cache_key(
            Query(workload="minife", size_gb=7.2, config="Cache Mode")
        )
        assert a == b

    def test_distinct_queries_get_distinct_keys(self, predictor):
        keys = {
            predictor.cache_key(
                Query(workload="dgemm", size_gb=4.0, config=c, num_threads=t)
            )
            for c in ("DRAM", "HBM")
            for t in (32, 64)
        }
        assert len(keys) == 4


class TestExecutorStats:
    def test_batch_counts_constituent_cells(self):
        # A coalesced batch is N evaluations, not one: the stats must
        # say so (the /metrics executor section builds on these).
        predictor = Predictor()
        queries = [
            Query(workload="dgemm", size_gb=4.0, config=c, num_threads=t)
            for c in ("DRAM", "HBM", "Cache Mode")
            for t in (16, 32)
        ]
        predictor.predict_many(queries)
        stats = predictor.stats()
        assert stats.batches == 1
        assert stats.batched_cells == len(queries)
        assert stats.misses == len(queries)
        # A replay is all cache hits: no new batches.
        predictor.predict_many(queries)
        after = predictor.stats()
        assert after.batches == 1
        assert after.hits == len(queries)
        predictor.close()


class TestCompareConfigs:
    def test_defaults_to_paper_trio_in_order(self, predictor):
        workload = FROM_GB["xsbench"](2.5)
        records = compare_configs(workload, runner=predictor.executor())
        trio = list(ConfigName.paper_trio())
        assert [r.config for r in records] == trio
        for record, config in zip(records, trio):
            oracle = ExperimentRunner().run(workload, make_config(config), 64)
            assert record.metric == oracle.metric


class TestExecutorTableThreadSafety:
    """The cross-thread stats contract: ``stats()`` (the /metrics
    executor section) must be callable while other threads grow the
    executor table — the regression behind the sharded /metrics
    aggregation (a concurrently-grown dict being iterated raises
    "dictionary changed size during iteration")."""

    def test_stats_is_safe_during_executor_growth(self):
        from repro.machine import registry

        names = [n for n in registry.names()]
        errors: list[Exception] = []
        predictor = Predictor()
        barrier = threading.Barrier(3)

        def reader() -> None:
            try:
                barrier.wait()
                for _ in range(200):
                    predictor.stats()
            except Exception as exc:
                errors.append(exc)

        def grower() -> None:
            try:
                barrier.wait()
                for name in names:
                    predictor.executor(name)
            except Exception as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=reader),
            threading.Thread(target=reader),
            threading.Thread(target=grower),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive()
        assert errors == []
        assert len(predictor._executor_snapshot()) == len(names)
        predictor.close()

    def test_concurrent_executor_creation_yields_one_instance(self):
        predictor = Predictor()
        barrier = threading.Barrier(4)
        seen: list[object] = []
        lock = threading.Lock()

        def create() -> None:
            barrier.wait()
            executor = predictor.executor("knl7250")
            with lock:
                seen.append(executor)

        threads = [threading.Thread(target=create) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert len(seen) == 4
        assert all(executor is seen[0] for executor in seen)
        predictor.close()
