"""The error taxonomy: wire codes, HTTP statuses, legacy-compatible bases.

The taxonomy's contract has three parts: stable ``code``/``http_status``
pairs, round-tripping through :class:`ErrorInfo`, and subclassing the
builtin exceptions the pre-``repro.api`` entry points raised so legacy
``except`` clauses keep working.
"""

from __future__ import annotations

import pytest

from repro.api.errors import (
    ApiError,
    CapacityError,
    DeadlineExceededError,
    InfeasibleConfigError,
    SchemaVersionError,
    UnknownWorkloadError,
    ValidationError,
    error_from_info,
    error_types,
)
from repro.api.types import ErrorInfo

TAXONOMY = [
    (ValidationError, "validation", 400),
    (SchemaVersionError, "unsupported_schema", 400),
    (UnknownWorkloadError, "unknown_workload", 404),
    (InfeasibleConfigError, "infeasible_config", 409),
    (CapacityError, "capacity", 429),
    (DeadlineExceededError, "deadline_exceeded", 504),
    (ApiError, "internal", 500),
]


@pytest.mark.parametrize("cls, code, status", TAXONOMY)
def test_codes_and_statuses_are_stable(cls, code, status):
    assert cls.code == code
    assert cls.http_status == status


@pytest.mark.parametrize("cls, code, status", TAXONOMY)
def test_round_trip_through_error_info(cls, code, status):
    error = cls("boom", details={"k": 1})
    info = error.to_info()
    assert info.code == code
    rehydrated = error_from_info(info)
    assert type(rehydrated) is cls
    assert rehydrated.message == "boom"
    assert rehydrated.details == {"k": 1}


def test_unknown_code_falls_back_to_base():
    error = error_from_info(ErrorInfo(code="from_the_future", message="m"))
    assert type(error) is ApiError
    assert error.details["wire_code"] == "from_the_future"


def test_legacy_exception_bases():
    # Historical call sites caught these builtins; the taxonomy must
    # still land in them.
    assert issubclass(ValidationError, ValueError)
    assert issubclass(UnknownWorkloadError, LookupError)
    assert issubclass(InfeasibleConfigError, RuntimeError)
    assert all(issubclass(cls, ApiError) for cls, _, _ in TAXONOMY)


def test_error_types_covers_the_taxonomy():
    mapping = error_types()
    for cls, code, _ in TAXONOMY:
        assert mapping[code] is cls
