"""Deprecation shims: the historical entry points warn, then answer
bit-identically to their canonical replacements.

The re-routing must be invisible except for the warning — each shim's
output is compared field-for-field against the canonical path.
"""

from __future__ import annotations

import pytest

from repro.api import compare_configs
from repro.core.configs import ConfigName, make_config
from repro.core.runner import ExperimentRunner
from repro.engine.batch import ModelTables
from repro.engine.placement import Location, PlacementMix
from repro.workloads.registry import FROM_GB


def test_performance_model_run_is_deprecated_alias(flat_model):
    profile = FROM_GB["minife"](7.2).profile()
    mix = PlacementMix.pure(Location.HBM)
    with pytest.warns(DeprecationWarning, match="PerformanceModel.run"):
        shimmed = flat_model.run(profile, mix, 64)
    canonical = flat_model.evaluate(profile, mix, 64)
    assert shimmed == canonical


def test_model_tables_run_batch_is_deprecated_alias(machine, flat_memory):
    tables = ModelTables(machine, flat_memory)
    requests = [
        (FROM_GB["dgemm"](4.0).profile(), PlacementMix.pure(loc), threads)
        for loc in (Location.DRAM, Location.HBM)
        for threads in (32, 64)
    ]
    with pytest.warns(DeprecationWarning, match="ModelTables.run_batch"):
        shimmed = tables.run_batch(requests)
    canonical = tables.evaluate_batch(requests)
    assert shimmed == canonical


def test_runner_run_configs_is_deprecated_alias():
    workload = FROM_GB["xsbench"](2.5)
    runner = ExperimentRunner()
    with pytest.warns(DeprecationWarning, match="run_configs is deprecated"):
        shimmed = runner.run_configs(workload, num_threads=64)
    canonical = compare_configs(workload, num_threads=64, runner=runner)
    assert shimmed == canonical
    # And the facade's answer is the per-config loop's answer.
    loop = [
        runner.run(workload, make_config(c), 64)
        for c in ConfigName.paper_trio()
    ]
    assert shimmed == loop
