"""The capacity planner: feasibility, bit-identity, errors, invariants.

One module-scoped predictor backs every solve, so the model tables
build once; the planner shares its executors exactly like the serving
layer does.
"""

from __future__ import annotations

import pytest

from repro.api.errors import InfeasiblePlanError, UnknownWorkloadError
from repro.api.facade import Predictor
from repro.api.plan import (
    MachineLoad,
    PlanAssignment,
    PlanRequest,
    PlanResult,
    PoolEntry,
    TrafficItem,
)
from repro.api.types import Query
from repro.plan import CapacityPlanner, check_plan, plan_request

MIX = (
    TrafficItem(workload="dgemm", size_gb=12.0, num_threads=64, weight=0.001),
    TrafficItem(workload="minife", size_gb=20.0, num_threads=64, weight=0.002),
    TrafficItem(workload="gups", size_gb=8.0, num_threads=32, weight=0.001),
)
POOL = (
    PoolEntry(machine="knl7210", nodes=8),
    PoolEntry(machine="xeonmax9480", nodes=8),
)


@pytest.fixture(scope="module")
def predictor():
    predictor = Predictor()
    yield predictor
    predictor.close()


@pytest.fixture(scope="module")
def planner(predictor):
    return CapacityPlanner(predictor)


@pytest.fixture(scope="module")
def runtime_result(planner):
    return planner.plan(PlanRequest(mix=MIX, pool=POOL))


class TestSolve:
    def test_feasible_and_invariant_clean(self, runtime_result):
        request = PlanRequest(mix=MIX, pool=POOL)
        assert check_plan(request, runtime_result) == []
        assert len(runtime_result.assignments) == len(MIX)
        assert runtime_result.objective == "runtime"
        assert runtime_result.objective_value > 0

    def test_assignments_follow_mix_order(self, runtime_result):
        assert tuple(a.item for a in runtime_result.assignments) == MIX

    def test_loads_cover_the_pool(self, runtime_result):
        assert tuple(load.machine for load in runtime_result.loads) == tuple(
            entry.machine for entry in POOL
        )
        for load in runtime_result.loads:
            assert 0.0 <= load.load_nodes <= load.nodes

    def test_bit_identity_with_direct_predict(self, planner, runtime_result):
        for assignment in runtime_result.assignments:
            direct = planner.predictor.predict(
                Query(
                    workload=assignment.item.workload,
                    size_gb=assignment.item.size_gb,
                    config=assignment.config,
                    num_threads=assignment.item.num_threads,
                    machine=assignment.machine,
                )
            )
            assert direct.time_ns == assignment.time_ns
            assert direct.metric == assignment.metric

    def test_loose_capacity_takes_every_cheapest_candidate(self, planner):
        request = PlanRequest(
            mix=MIX,
            pool=tuple(
                PoolEntry(machine=e.machine, nodes=10_000) for e in POOL
            ),
        )
        per_item = planner._candidates(request)
        result = planner.plan(request)
        assert result.objective_value == pytest.approx(
            sum(options[0].cost for options in per_item), rel=1e-12
        )

    def test_tight_capacity_stays_feasible_and_no_cheaper(self, planner):
        loose = planner.plan(PlanRequest(mix=MIX, pool=POOL))
        tight_pool = (
            PoolEntry(machine="knl7210", nodes=1),
            PoolEntry(machine="xeonmax9480", nodes=1),
        )
        tight_request = PlanRequest(mix=MIX, pool=tight_pool)
        tight = planner.plan(tight_request)
        assert check_plan(tight_request, tight) == []
        assert tight.objective_value >= loose.objective_value - 1e-12

    def test_determinism(self, planner, runtime_result):
        again = planner.plan(PlanRequest(mix=MIX, pool=POOL))
        assert again == runtime_result
        assert again.to_dict() == runtime_result.to_dict()

    def test_module_entry_point(self, predictor, runtime_result):
        assert (
            plan_request(PlanRequest(mix=MIX, pool=POOL), predictor=predictor)
            == runtime_result
        )


class TestEnergyObjective:
    def test_energy_plan_is_clean_and_priced_in_joules(self, planner):
        request = PlanRequest(mix=MIX, pool=POOL, objective="energy")
        result = planner.plan(request)
        assert check_plan(request, result) == []
        assert result.objective == "energy"
        assert result.objective_value == pytest.approx(
            sum(a.item.weight * a.energy_j for a in result.assignments),
            rel=1e-12,
        )
        for assignment in result.assignments:
            assert assignment.energy_j > 0


class TestInfeasibility:
    def test_unknown_workload_surfaces_before_fanout(self, planner):
        request = PlanRequest(
            mix=(TrafficItem(workload="linpack", size_gb=4.0),), pool=POOL
        )
        with pytest.raises(UnknownWorkloadError):
            planner.plan(request)

    def test_item_with_no_candidate_anywhere(self, planner):
        # 256 threads exceeds the Xeon Max's 112-thread limit, and the
        # pool offers nothing else: the item has zero viable candidates.
        request = PlanRequest(
            mix=(TrafficItem(workload="dgemm", size_gb=8.0, num_threads=256),),
            pool=(PoolEntry(machine="xeonmax9480", nodes=8),),
        )
        with pytest.raises(InfeasiblePlanError) as excinfo:
            planner.plan(request)
        assert excinfo.value.details["items"] == ["dgemm"]

    def test_overloaded_mix_does_not_pack(self, planner):
        # A weight this large keeps far more than one node busy on
        # every candidate; a 1-node pool cannot absorb it.
        request = PlanRequest(
            mix=(TrafficItem(workload="dgemm", size_gb=12.0, weight=1e6),),
            pool=(PoolEntry(machine="knl7210", nodes=1),),
        )
        with pytest.raises(InfeasiblePlanError) as excinfo:
            planner.plan(request)
        assert "remaining_nodes" in excinfo.value.details


class TestInvariantTamper:
    """Each invariant catches its violation class on hand-broken plans."""

    @pytest.fixture(scope="class")
    def solved(self, planner):
        request = PlanRequest(mix=MIX, pool=POOL)
        return request, planner.plan(request)

    @staticmethod
    def _rebuild(result, **overrides):
        fields = {
            "assignments": result.assignments,
            "objective": result.objective,
            "objective_value": result.objective_value,
            "loads": result.loads,
        }
        fields.update(overrides)
        return PlanResult(**fields)

    @staticmethod
    def _patch_assignment(assignment, **overrides):
        fields = assignment.to_dict()
        item = fields.pop("item")
        fields.update(overrides)
        return PlanAssignment(item=TrafficItem(**item), **fields)

    def test_dropped_item_caught(self, solved):
        request, result = solved
        broken = self._rebuild(result, assignments=result.assignments[:-1])
        assert any(
            "plan.weight_conserved" in v for v in check_plan(request, broken)
        )

    def test_tampered_load_caught(self, solved):
        request, result = solved
        first = self._patch_assignment(
            result.assignments[0],
            load_nodes=result.assignments[0].load_nodes * 2,
        )
        broken = self._rebuild(
            result, assignments=(first,) + result.assignments[1:]
        )
        assert any(
            "plan.assignments_valid" in v for v in check_plan(request, broken)
        )

    def test_over_capacity_caught(self, solved):
        request, _ = solved
        # Same plan judged against a pool squeezed to a sliver of the
        # loads it actually carries.
        result = solved[1]
        shrunk = PlanRequest(
            mix=request.mix,
            pool=tuple(
                PoolEntry(machine=e.machine, nodes=1) for e in request.pool
            ),
        )
        tiny = self._rebuild(
            result,
            assignments=tuple(
                self._patch_assignment(a, load_nodes=5.0, time_ns=5.0 / a.item.weight * 1e9)
                for a in result.assignments
            ),
            objective_value=5.0 * len(result.assignments),
            loads=tuple(
                MachineLoad(machine=l.machine, nodes=1, load_nodes=5.0)
                for l in result.loads
            ),
        )
        assert any(
            "plan.capacity_feasible" in v for v in check_plan(shrunk, tiny)
        )

    def test_mismatched_load_rows_caught(self, solved):
        request, result = solved
        broken = self._rebuild(
            result,
            loads=tuple(
                MachineLoad(
                    machine=l.machine,
                    nodes=l.nodes,
                    load_nodes=l.load_nodes + 1.0,
                )
                for l in result.loads
            ),
        )
        assert any(
            "plan.capacity_feasible" in v for v in check_plan(request, broken)
        )

    def test_tampered_objective_caught(self, solved):
        request, result = solved
        broken = self._rebuild(
            result, objective_value=result.objective_value * 3 + 1.0
        )
        assert any(
            "plan.objective_consistent" in v
            for v in check_plan(request, broken)
        )

    def test_wrong_objective_kind_caught(self, solved):
        request, result = solved
        broken = self._rebuild(
            result,
            objective="energy",
            objective_value=sum(
                a.item.weight * a.energy_j for a in result.assignments
            ),
        )
        assert any(
            "plan.objective_consistent" in v
            for v in check_plan(request, broken)
        )
