"""Span tracer: nesting, timing, the disabled fast path, Chrome export."""

from __future__ import annotations

import gc
import json
import sys
import threading
import time

from repro.obs import trace


class TestSpanRecording:
    def test_records_name_and_positive_duration(self):
        tracer = trace.install()
        with trace.span("outer"):
            time.sleep(0.001)
        trace.uninstall()
        (record,) = tracer.records()
        assert record.name == "outer"
        assert record.duration_ns >= 1_000_000  # slept >= 1 ms
        assert record.end_ns == record.start_ns + record.duration_ns

    def test_nesting_depth_and_parent(self):
        tracer = trace.install()
        with trace.span("a"):
            with trace.span("b"):
                with trace.span("c"):
                    pass
        trace.uninstall()
        by_name = {r.name: r for r in tracer.records()}
        assert by_name["a"].depth == 0 and by_name["a"].parent is None
        assert by_name["b"].depth == 1 and by_name["b"].parent == "a"
        assert by_name["c"].depth == 2 and by_name["c"].parent == "b"

    def test_completion_order_is_child_first(self):
        tracer = trace.install()
        with trace.span("parent"):
            with trace.span("child"):
                pass
        trace.uninstall()
        assert [r.name for r in tracer.records()] == ["child", "parent"]

    def test_child_nested_within_parent_interval(self):
        tracer = trace.install()
        with trace.span("parent"):
            with trace.span("child"):
                pass
        trace.uninstall()
        child, parent = tracer.records()
        assert parent.start_ns <= child.start_ns
        assert child.end_ns <= parent.end_ns

    def test_tags_recorded_and_tag_method(self):
        tracer = trace.install()
        with trace.span("t", tags={"config": "HBM"}) as span:
            span.tag("outcome", "ok")
        trace.uninstall()
        (record,) = tracer.records()
        assert record.tags == {"config": "HBM", "outcome": "ok"}

    def test_sibling_spans_reuse_depth(self):
        tracer = trace.install()
        with trace.span("parent"):
            with trace.span("first"):
                pass
            with trace.span("second"):
                pass
        trace.uninstall()
        by_name = {r.name: r for r in tracer.records()}
        assert by_name["first"].depth == by_name["second"].depth == 1
        assert by_name["second"].parent == "parent"

    def test_per_thread_stacks(self):
        tracer = trace.install()
        seen = []

        def worker():
            with trace.span("worker"):
                seen.append(threading.get_ident())

        with trace.span("main"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        trace.uninstall()
        by_name = {r.name: r for r in tracer.records()}
        # The other thread's span is a root in its own stack, not a child
        # of the main thread's open span.
        assert by_name["worker"].depth == 0
        assert by_name["worker"].parent is None
        assert by_name["worker"].thread_id == seen[0]
        assert by_name["worker"].thread_id != by_name["main"].thread_id


class TestDisabledFastPath:
    def test_disabled_by_default(self):
        assert not trace.enabled()
        assert trace.active_tracer() is None

    def test_null_span_is_a_singleton(self):
        first = trace.span("a", tags={"x": 1})
        second = trace.span("b")
        assert first is second

    def test_null_span_supports_the_full_protocol(self):
        with trace.span("ignored") as span:
            assert span.tag("k", "v") is span

    def test_no_allocation_per_call(self):
        # The contract that makes hot-path instrumentation free: a
        # disabled span() call allocates no objects at all.
        span = trace.span  # resolve attribute outside the loop
        for _ in range(10):  # warm up (method caches, etc.)
            with span("warm"):
                pass
        gc.collect()
        before = sys.getallocatedblocks()
        for _ in range(10_000):
            with span("hot"):
                pass
        gc.collect()
        after = sys.getallocatedblocks()
        assert after - before < 10  # zero per-call; small slack for gc noise

    def test_install_uninstall_round_trip(self):
        tracer = trace.install()
        assert trace.enabled() and trace.active_tracer() is tracer
        with trace.span("seen"):
            pass
        trace.uninstall()
        assert not trace.enabled()
        with trace.span("unseen"):
            pass
        assert [r.name for r in tracer.records()] == ["seen"]


class TestTracerBounds:
    def test_max_spans_drops_not_crashes(self):
        tracer = trace.install(trace.Tracer(max_spans=3))
        for index in range(5):
            with trace.span(f"s{index}"):
                pass
        trace.uninstall()
        assert len(tracer) == 3
        assert tracer.dropped == 2

    def test_clear(self):
        tracer = trace.install()
        with trace.span("x"):
            pass
        trace.uninstall()
        tracer.clear()
        assert len(tracer) == 0 and tracer.dropped == 0


class TestChromeTrace:
    def _records(self):
        tracer = trace.install()
        with trace.span("runner.run", tags={"config": "DRAM"}):
            with trace.span("perfmodel.phase"):
                pass
        trace.uninstall()
        return tracer.records()

    def test_structure(self):
        doc = trace.to_chrome_trace(self._records())
        assert doc["displayTimeUnit"] == "ms"
        meta, *events = doc["traceEvents"]
        assert meta["ph"] == "M" and meta["args"]["name"] == "repro"
        assert {e["ph"] for e in events} == {"X"}
        for event in events:
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert event["pid"] == 0 and isinstance(event["tid"], int)

    def test_categories_and_tags_in_args(self):
        doc = trace.to_chrome_trace(self._records())
        by_name = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert by_name["runner.run"]["cat"] == "runner"
        assert by_name["runner.run"]["args"]["config"] == "DRAM"
        assert by_name["perfmodel.phase"]["args"]["parent"] == "runner.run"

    def test_json_serializable(self):
        doc = trace.to_chrome_trace(self._records())
        assert json.loads(json.dumps(doc)) == doc

    def test_empty(self):
        assert trace.to_chrome_trace([]) == {
            "traceEvents": [],
            "displayTimeUnit": "ms",
        }
