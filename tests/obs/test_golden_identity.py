"""Tracing on ⇒ every exhibit byte-identical to its golden output.

The observability layer's core promise (docs/OBSERVABILITY.md): an
active session may watch the pipeline but must never perturb it.  Every
exhibit is rendered under a live observation session and diffed against
the same ``benchmarks/output`` dumps the plain golden suite uses
(``tests/figures/test_golden_outputs.py``).
"""

from __future__ import annotations

import pathlib

import pytest

from repro import obs
from repro.core.runner import ExperimentRunner
from repro.figures import EXHIBITS

GOLDEN_DIR = pathlib.Path(__file__).parent.parent.parent / "benchmarks" / "output"


def _normalize(text: str) -> str:
    return "\n".join(line.rstrip() for line in text.splitlines()).rstrip() + "\n"


@pytest.fixture(scope="module")
def rendered_under_observation():
    """Render every exhibit inside one observation session."""
    runner = ExperimentRunner()
    out = {}
    with obs.observe() as session:
        for exhibit_id, generate in EXHIBITS.items():
            try:
                out[exhibit_id] = generate(runner)  # type: ignore[call-arg]
            except TypeError:
                out[exhibit_id] = generate()  # table generators take no runner
    # The session must have actually observed something — otherwise this
    # suite would pass vacuously with instrumentation unplugged.
    assert len(session.spans()) > 0
    assert session.metrics.counter_value("model.runs") > 0
    return out


@pytest.mark.parametrize("exhibit_id", sorted(EXHIBITS))
def test_exhibit_identical_under_tracing(rendered_under_observation, exhibit_id):
    golden = _normalize((GOLDEN_DIR / f"{exhibit_id}.txt").read_text())
    actual = _normalize(rendered_under_observation[exhibit_id].render())
    assert actual == golden, (
        f"{exhibit_id} drifted when rendered under an observation session — "
        f"instrumentation must never change model output"
    )
