"""Observability tests must never leak an installed session."""

from __future__ import annotations

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace


@pytest.fixture(autouse=True)
def obs_disabled_before_and_after():
    """Every test starts from — and restores — the disabled fast path."""
    assert not obs_trace.enabled() and not obs_metrics.enabled()
    yield
    obs_trace.uninstall()
    obs_metrics.uninstall()
