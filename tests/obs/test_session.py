"""Observation sessions: lifecycle, env wiring, exports."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace


class TestLifecycle:
    def test_observe_installs_and_uninstalls_both(self):
        assert not obs.enabled()
        with obs.observe() as session:
            assert obs_trace.enabled() and obs_metrics.enabled()
            assert obs_trace.active_tracer() is session.tracer
            assert obs_metrics.active_registry() is session.metrics
        assert not obs_trace.enabled() and not obs_metrics.enabled()

    def test_uninstalls_on_exception(self):
        with pytest.raises(RuntimeError, match="boom"):
            with obs.observe():
                raise RuntimeError("boom")
        assert not obs.enabled()

    def test_sessions_do_not_nest(self):
        with obs.observe():
            with pytest.raises(RuntimeError, match="do not nest"):
                obs.Observation().start()

    def test_double_start_rejected(self):
        session = obs.Observation().start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                session.start()
        finally:
            session.stop()

    def test_stop_is_idempotent(self):
        session = obs.Observation().start()
        session.stop()
        session.stop()
        assert not obs.enabled()


class TestEnvWiring:
    @pytest.mark.parametrize(
        "value", [None, "", "0", "false", "FALSE", "off", "no", "  0  "]
    )
    def test_falsy(self, value):
        assert not obs.env_truthy(value)

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on", "anything"])
    def test_truthy(self, value):
        assert obs.env_truthy(value)

    def test_observation_from_env_disabled(self):
        assert obs.observation_from_env({}) is None
        assert obs.observation_from_env({"REPRO_TRACE": "0"}) is None
        assert not obs.enabled()

    def test_observation_from_env_enabled(self):
        session = obs.observation_from_env({"REPRO_TRACE": "1"})
        try:
            assert session is not None
            assert obs.enabled()
        finally:
            session.stop()


class TestViewsAndExport:
    def _session_with_data(self):
        with obs.observe() as session:
            with obs_trace.span("outer", tags={"k": "v"}):
                obs_metrics.add("count", 3)
                obs_metrics.observe("lat", 2.0)
        return session

    def test_views_survive_stop(self):
        session = self._session_with_data()
        (record,) = session.spans()
        assert record.name == "outer"
        assert session.metrics_dict()["counters"] == {"count": 3}
        events = session.chrome_trace()["traceEvents"]
        assert any(e["ph"] == "X" and e["name"] == "outer" for e in events)

    def test_summary(self):
        session = self._session_with_data()
        assert session.summary() == "1 spans, 2 metric series"

    def test_write_both_files(self, tmp_path):
        session = self._session_with_data()
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        written = session.write(trace_out=trace_path, metrics_out=metrics_path)
        assert written == [trace_path, metrics_path]
        trace_doc = json.loads(trace_path.read_text())
        assert trace_doc["traceEvents"]
        metrics_doc = json.loads(metrics_path.read_text())
        assert metrics_doc["counters"]["count"] == 3

    def test_write_nothing(self):
        assert self._session_with_data().write() == []
