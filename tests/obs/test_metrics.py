"""Metrics registry: aggregation, labels, export, the disabled no-ops."""

from __future__ import annotations

import json

import pytest

from repro.obs import metrics


class TestCounters:
    def test_accumulates(self):
        registry = metrics.MetricsRegistry()
        registry.add("runs")
        registry.add("runs", 2.5)
        assert registry.counter_value("runs") == 3.5

    def test_labels_create_distinct_series(self):
        registry = metrics.MetricsRegistry()
        registry.add("bytes", 10, {"device": "dram"})
        registry.add("bytes", 7, {"device": "mcdram"})
        registry.add("bytes", 5, {"device": "dram"})
        assert registry.counter_value("bytes", {"device": "dram"}) == 15
        assert registry.counter_value("bytes", {"device": "mcdram"}) == 7
        assert registry.counter_value("bytes") == 0.0  # unlabelled is separate

    def test_label_order_is_irrelevant(self):
        registry = metrics.MetricsRegistry()
        registry.add("m", 1, {"a": 1, "b": 2})
        registry.add("m", 1, {"b": 2, "a": 1})
        assert registry.counter_value("m", {"a": 1, "b": 2}) == 2


class TestGauges:
    def test_last_write_wins(self):
        registry = metrics.MetricsRegistry()
        registry.set_gauge("hit_rate", 0.25)
        registry.set_gauge("hit_rate", 0.75)
        assert registry.gauge_value("hit_rate") == 0.75

    def test_unwritten_is_none(self):
        assert metrics.MetricsRegistry().gauge_value("nope") is None


class TestHistograms:
    def test_summary(self):
        registry = metrics.MetricsRegistry()
        for value in (1.0, 2.0, 6.0):
            registry.observe("latency", value)
        summary = registry.histogram_summary("latency")
        assert summary.count == 3
        assert summary.total == 9.0
        assert summary.minimum == 1.0 and summary.maximum == 6.0
        assert summary.mean == pytest.approx(3.0)

    def test_empty_as_dict(self):
        histogram = metrics.Histogram()
        assert histogram.as_dict() == {
            "count": 0,
            "sum": 0.0,
            "min": 0.0,
            "max": 0.0,
            "mean": 0.0,
        }


class TestExport:
    def test_flat_name(self):
        assert metrics.flat_name("m", None) == "m"
        assert (
            metrics.flat_name("m", {"b": 2, "a": "x"}) == "m{a=x,b=2}"
        )  # sorted keys

    def test_as_dict_shape_and_serializability(self):
        registry = metrics.MetricsRegistry()
        registry.add("c", 2, {"k": "v"})
        registry.set_gauge("g", 0.5)
        registry.observe("h", 1.0)
        exported = registry.as_dict()
        assert exported["counters"] == {"c{k=v}": 2}
        assert exported["gauges"] == {"g": 0.5}
        assert exported["histograms"]["h"]["count"] == 1
        assert json.loads(json.dumps(exported)) == exported

    def test_names_and_clear(self):
        registry = metrics.MetricsRegistry()
        registry.add("a", 1, {"x": 1})
        registry.set_gauge("b", 1)
        registry.observe("c", 1)
        assert registry.names() == {"a", "b", "c"}
        registry.clear()
        assert registry.names() == set()


class TestModuleLevelSwitch:
    def test_disabled_by_default_and_noop(self):
        assert not metrics.enabled()
        assert metrics.active_registry() is None
        # Must not raise, must not create anything.
        metrics.add("x")
        metrics.set_gauge("y", 1.0)
        metrics.observe("z", 1.0)

    def test_install_routes_writes(self):
        registry = metrics.install()
        metrics.add("runs", 2)
        metrics.set_gauge("rate", 0.5)
        metrics.observe("lat", 3.0)
        metrics.uninstall()
        metrics.add("runs", 100)  # after uninstall: dropped
        assert registry.counter_value("runs") == 2
        assert registry.gauge_value("rate") == 0.5
        assert registry.histogram_summary("lat").count == 1


class TestMergeExports:
    """merge_exports: the cross-replica /metrics aggregation contract."""

    @staticmethod
    def _export(requests: float, latencies: "list[float]", depth: float):
        registry = metrics.MetricsRegistry()
        registry.add("serve.requests", requests)
        registry.set_gauge("queue.depth", depth)
        for value in latencies:
            registry.observe("request_ms", value)
        return registry.as_dict()

    def test_counters_sum_never_last_writer_wins(self):
        merged = metrics.merge_exports(
            [self._export(4.0, [], 0.0), self._export(2.0, [], 0.0)]
        )
        # The latent bug this helper prevents: reading one replica's
        # registry would report 4.0 or 2.0; the fleet saw 6 requests.
        assert merged["counters"]["serve.requests"] == 6.0

    def test_histograms_merge_exactly(self):
        merged = metrics.merge_exports(
            [
                self._export(0.0, [1.0, 5.0], 0.0),
                self._export(0.0, [3.0, 11.0, 2.0], 0.0),
            ]
        )
        summary = merged["histograms"]["request_ms"]
        assert summary["count"] == 5
        assert summary["sum"] == pytest.approx(22.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 11.0
        assert summary["mean"] == pytest.approx(22.0 / 5)

    def test_gauges_sum_depth_like(self):
        merged = metrics.merge_exports(
            [self._export(0.0, [], 3.0), self._export(0.0, [], 5.0)]
        )
        assert merged["gauges"]["queue.depth"] == 8.0

    def test_tolerates_empty_and_non_mapping_entries(self):
        merged = metrics.merge_exports([{}, None, self._export(1.0, [], 0.0)])
        assert merged["counters"]["serve.requests"] == 1.0
        assert metrics.merge_exports([]) == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_disjoint_series_pass_through(self):
        left = metrics.MetricsRegistry()
        left.add("router.forwards", 2.0, {"replica": "r0"})
        right = metrics.MetricsRegistry()
        right.add("router.forwards", 3.0, {"replica": "r1"})
        merged = metrics.merge_exports([left.as_dict(), right.as_dict()])
        assert merged["counters"] == {
            "router.forwards{replica=r0}": 2.0,
            "router.forwards{replica=r1}": 3.0,
        }
