"""The instrumented pipeline: spans/metrics emitted, results unchanged.

These tests pin the contract of docs/OBSERVABILITY.md: enabling a
session surfaces the model's internals (cache hit/miss/conflict counts,
TLB walks, per-device bytes, concurrency) without changing any computed
record.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.configs import ConfigName
from repro.core.executor import SweepCell, SweepExecutor
from repro.core.runner import ExperimentRunner
from repro.engine.eventsim import MemoryEventSimulator
from repro.memory.dram import ddr4_archer
from repro.workloads.gups import GUPS
from repro.workloads.stream import StreamBenchmark


def _gups(gb: float = 8.6) -> GUPS:
    return GUPS.from_table_gb(gb)


class TestRunnerInstrumentation:
    def test_cache_mode_random_run_surfaces_model_internals(self):
        with obs.observe() as session:
            record = ExperimentRunner().run(_gups(), ConfigName.CACHE, 64)
        assert record.metric is not None
        registry = session.metrics
        labels = {"pattern": "random"}

        accesses = registry.counter_value("mcdram_cache.accesses", labels)
        hits = registry.counter_value("mcdram_cache.hits", labels)
        misses = registry.counter_value("mcdram_cache.misses", labels)
        conflicts = registry.counter_value("mcdram_cache.conflict_misses", labels)
        assert accesses > 0
        assert hits + misses == pytest.approx(accesses)
        assert 0 <= conflicts <= misses
        hit_rate = registry.gauge_value("mcdram_cache.hit_rate", labels)
        assert 0.0 <= hit_rate <= 1.0

        # Cache mode serves every byte through MCDRAM; misses also move
        # DDR bytes — so both devices show traffic, MCDRAM the larger.
        mcdram = registry.counter_value("model.bytes_moved", {"device": "mcdram"})
        dram = registry.counter_value("model.bytes_moved", {"device": "dram"})
        assert mcdram > 0 and dram > 0
        assert mcdram >= dram

        assert registry.counter_value("tlb.l1_misses") > 0
        assert registry.counter_value("tlb.walks") > 0
        assert registry.counter_value(
            "runner.runs", {"config": "Cache Mode"}
        ) == 1
        concurrency = registry.histogram_summary(
            "model.concurrency", {"pattern": "random"}
        )
        assert concurrency is not None and concurrency.count >= 1

    def test_flat_dram_run_moves_no_mcdram_bytes(self):
        with obs.observe() as session:
            ExperimentRunner().run(_gups(), ConfigName.DRAM, 64)
        registry = session.metrics
        assert registry.counter_value("model.bytes_moved", {"device": "dram"}) > 0
        assert (
            registry.counter_value("model.bytes_moved", {"device": "mcdram"}) == 0
        )

    def test_infeasible_run_counted(self):
        with obs.observe() as session:
            record = ExperimentRunner().run(_gups(32.0), ConfigName.HBM, 64)
        assert record.metric is None  # 32 GB exceeds MCDRAM's 16 GB
        assert session.metrics.counter_value(
            "runner.infeasible", {"config": "HBM"}
        ) == 1

    def test_span_tree_of_one_run(self):
        with obs.observe() as session:
            ExperimentRunner().run(_gups(), ConfigName.CACHE, 64)
        by_name = {r.name: r for r in session.spans()}
        run = by_name["runner.run"]
        model = by_name["perfmodel.run"]
        phase = by_name["perfmodel.phase"]
        assert run.depth == 0 and run.parent is None
        assert model.parent == "runner.run" and model.depth == 1
        assert phase.parent == "perfmodel.run" and phase.depth == 2
        assert run.tags["workload"] == "GUPS"
        assert run.tags["config"] == "Cache Mode"
        assert phase.tags["pattern"] == "random"

    def test_record_identical_with_and_without_observation(self):
        plain = ExperimentRunner().run(_gups(), ConfigName.CACHE, 64)
        with obs.observe():
            observed = ExperimentRunner().run(_gups(), ConfigName.CACHE, 64)
        assert observed == plain


class TestEventSimInstrumentation:
    def test_metrics_and_span(self):
        simulator = MemoryEventSimulator(ddr4_archer(), sequential=True)
        with obs.observe() as session:
            result = simulator.run(
                threads=4, mlp=2.0, requests_per_thread=50, seed=7
            )
        registry = session.metrics
        assert registry.counter_value("eventsim.requests") == result.requests
        latency = registry.histogram_summary("eventsim.mean_latency_ns")
        assert latency.count == 1
        (span,) = [s for s in session.spans() if s.name == "eventsim.run"]
        assert span.tags["threads"] == 4
        assert span.tags["sequential"] is True

    def test_result_identical_with_and_without_observation(self):
        simulator = MemoryEventSimulator(ddr4_archer(), sequential=False)
        plain = simulator.run(threads=2, mlp=2.0, requests_per_thread=40, seed=3)
        with obs.observe():
            observed = simulator.run(
                threads=2, mlp=2.0, requests_per_thread=40, seed=3
            )
        assert observed == plain


class TestExecutorInstrumentation:
    def _cells(self):
        from repro.core.configs import make_config

        dram = make_config(ConfigName.DRAM)
        return [
            SweepCell(StreamBenchmark(size_bytes=int(gb * 1e9)), dram, 64)
            for gb in (2.0, 4.0)
        ]

    def test_cell_profiles_delivered_in_submission_order(self):
        collector = obs.CellProfileCollector()
        with obs.observe():
            with SweepExecutor(
                ExperimentRunner(), profile_hooks=[collector]
            ) as executor:
                executor.run_cells(self._cells())
                executor.run_cells(self._cells())  # second pass: all cached
        profiles = collector.profiles
        assert len(profiles) == 4
        assert [p.cached for p in profiles] == [False, False, True, True]
        assert [p.workload for p in profiles] == ["STREAM"] * 4
        assert all(p.wall_ns >= 0 for p in profiles)
        assert all(p.metric is not None for p in profiles)
        table = collector.describe()
        assert "4 cells (2 cached)" in table

    def test_hooks_work_without_observation_session(self):
        collector = obs.CellProfileCollector()
        executor = SweepExecutor(ExperimentRunner())
        executor.add_profile_hook(collector)
        executor.run_cells(self._cells())
        assert len(collector.profiles) == 2
        assert not obs.enabled()

    def test_executor_metrics_and_spans(self):
        with obs.observe() as session:
            with SweepExecutor(ExperimentRunner(), jobs=2) as executor:
                executor.run_cells(self._cells())
                executor.run_cells(self._cells())
        registry = session.metrics
        assert registry.counter_value("executor.cache_misses") == 2
        assert registry.counter_value("executor.cache_hits") == 2
        assert registry.counter_value("executor.cells_executed") == 2
        assert registry.counter_value("executor.cells", {"source": "model"}) == 2
        assert registry.counter_value("executor.cells", {"source": "cache"}) == 2
        assert registry.gauge_value("executor.hit_rate") == pytest.approx(0.5)
        names = [s.name for s in session.spans()]
        assert names.count("executor.run_cells") == 2
        assert names.count("executor.cell") == 2  # only executed cells traced
        cell_spans = [s for s in session.spans() if s.name == "executor.cell"]
        assert {s.tags["workload"] for s in cell_spans} == {"STREAM"}
