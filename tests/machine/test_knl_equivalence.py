"""KNL equivalence golden test.

Before the machine registry existed, the KNL presets were hand-built:
``Tile.build`` with the KNL core parameters, the standard L1/L2
geometries, and the Archer memory tiers implied by ``spec=None``.  The
registry entries must reproduce those machines *bit-identically* — same
fingerprint, same cache keys, same run records — so that every result
ever produced (and every on-disk cache entry ever written) stays valid.

This test pins data, not pixels: it rebuilds the historical machines by
hand, runs a representative slice of the paper grid on both, and demands
exact equality.
"""

from __future__ import annotations

import pytest

from repro.core.configs import ConfigName, make_config
from repro.core.executor import cache_key, machine_fingerprint
from repro.core.runner import ExperimentRunner
from repro.machine import registry
from repro.machine.caches import knl_l1d, knl_l2
from repro.machine.mesh import ClusterMode, Mesh2D
from repro.machine.tile import Tile
from repro.machine.topology import Machine
from repro.workloads.gups import GUPS
from repro.workloads.minife import MiniFE

# The historical hand-built presets, reproduced verbatim (these literals
# predate the registry; do not "refactor" them to read from it — the
# whole point is an independent reconstruction).
_KNL_CORE_KWARGS = dict(
    smt_threads=4,
    mlp_sequential=13.4,
    mlp_random=2.0,
    dp_flops_per_cycle=32.0,
    issue_efficiency=(0.55, 0.85, 0.95, 0.92),
    outstanding_line_cap=17.0,
)

_LEGACY = {
    "knl7210": ("Intel Xeon Phi 7210", 1.3, 4, 8, 32),
    "knl7250": ("Intel Xeon Phi 7250", 1.4, 5, 7, 34),
}


def _legacy_machine(key: str) -> Machine:
    name, freq, rows, cols, num_tiles = _LEGACY[key]
    tiles = tuple(
        Tile.build(
            tile_id=t,
            first_core_id=2 * t,
            l2=knl_l2(),
            frequency_ghz=freq,
            **_KNL_CORE_KWARGS,
        )
        for t in range(num_tiles)
    )
    mesh = Mesh2D(
        rows=rows,
        cols=cols,
        tiles=tiles,
        hop_latency_ns=1.6,
        cluster_mode=ClusterMode.QUADRANT,
    )
    return Machine(name=name, mesh=mesh, l1d=knl_l1d(), spec=None)


@pytest.mark.parametrize("key", ["knl7210", "knl7250"])
def test_registry_knl_matches_legacy_construction(key):
    legacy = _legacy_machine(key)
    registered = registry.build(key)

    # Identical compute-side aggregates...
    assert registered.describe() == legacy.describe()
    assert registered.peak_dp_gflops == legacy.peak_dp_gflops
    # ...identical memory tiers (spec=None falls back to Archer devices)...
    assert registered.near_device() == legacy.near_device()
    assert registered.far_device() == legacy.far_device()
    # ...and identical content-addressed identity.
    assert machine_fingerprint(registered) == machine_fingerprint(legacy)


@pytest.mark.parametrize("key", ["knl7210", "knl7250"])
def test_registry_knl_runs_bit_identical(key):
    """Every record of a representative grid slice is exactly equal."""
    legacy_runner = ExperimentRunner(_legacy_machine(key))
    registry_runner = ExperimentRunner(registry.build(key))
    workloads = (MiniFE.from_matrix_gb(7.2), GUPS.from_table_gb(4.0))
    for workload in workloads:
        for config in ConfigName.paper_trio():
            for threads in (1, 64, 128, 256):
                legacy = legacy_runner.run(workload, config, threads)
                registered = registry_runner.run(workload, config, threads)
                assert registered == legacy
                assert cache_key(
                    registry_runner.machine,
                    workload,
                    make_config(config),
                    threads,
                ) == cache_key(
                    legacy_runner.machine,
                    workload,
                    make_config(config),
                    threads,
                )
