"""Cache geometry and functional cache simulator tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.caches import (
    CacheGeometry,
    SetAssociativeCache,
    knl_l1d,
    knl_l2,
)
from repro.util.units import KiB, MiB


class TestGeometry:
    def test_knl_l1(self):
        l1 = knl_l1d()
        assert l1.capacity_bytes == 32 * KiB
        assert l1.num_lines == 512

    def test_knl_l2(self):
        l2 = knl_l2()
        assert l2.capacity_bytes == 1 * MiB
        assert l2.load_to_use_ns == pytest.approx(10.0)

    def test_sets_times_ways_is_lines(self):
        g = CacheGeometry("t", 8192, associativity=4)
        assert g.num_sets * g.associativity == g.num_lines

    def test_direct_mapped_flag(self):
        assert CacheGeometry("dm", 4096, associativity=1).is_direct_mapped
        assert not knl_l2().is_direct_mapped

    def test_capacity_line_divisibility(self):
        with pytest.raises(ValueError):
            CacheGeometry("bad", 100, line_bytes=64)

    def test_ways_divisibility(self):
        with pytest.raises(ValueError):
            CacheGeometry("bad", 64 * 3, associativity=2)


def small_cache(assoc: int = 2, lines: int = 16) -> SetAssociativeCache:
    return SetAssociativeCache(
        CacheGeometry("t", lines * 64, associativity=assoc)
    )


class TestAccess:
    def test_cold_miss_then_hit(self):
        c = small_cache()
        assert c.access(0) is False
        assert c.access(0) is True
        assert c.access(63) is True  # same line

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            small_cache().access(-1)

    def test_direct_mapped_conflict(self):
        c = small_cache(assoc=1, lines=4)  # 4 sets
        c.access(0)
        c.access(4 * 64)  # maps to the same set, evicts
        assert c.access(0) is False

    def test_associative_avoids_conflict(self):
        c = small_cache(assoc=2, lines=8)  # 4 sets x 2 ways
        c.access(0)
        c.access(4 * 64)
        assert c.access(0) is True

    def test_lru_eviction_order(self):
        c = small_cache(assoc=2, lines=2)  # 1 set, 2 ways
        c.access(0)
        c.access(64)
        c.access(0)       # 64 is now LRU
        c.access(2 * 64)  # evicts 64
        assert c.contains(0)
        assert not c.contains(64)

    def test_streaming_larger_than_cache_all_misses(self):
        c = small_cache(assoc=2, lines=16)
        addresses = np.arange(0, 64 * 64, 64)
        hits = c.access_block(addresses)
        assert not hits.any()

    def test_resident_working_set_all_hits_second_pass(self):
        c = small_cache(assoc=2, lines=16)
        addresses = np.arange(0, 8 * 64, 64)
        c.access_block(addresses)
        assert c.access_block(addresses).all()


class TestStats:
    def test_conservation(self):
        c = small_cache()
        rng = np.random.default_rng(0)
        c.access_block(rng.integers(0, 64 * 64, size=500))
        assert c.stats.hits + c.stats.misses == c.stats.accesses == 500

    def test_flush_keeps_stats(self):
        c = small_cache()
        c.access(0)
        c.flush()
        assert c.stats.accesses == 1
        assert c.occupancy() == 0
        assert c.access(0) is False

    def test_hit_rate_zero_when_empty(self):
        assert small_cache().stats.hit_rate == 0.0


class TestBlockEquivalence:
    @given(
        st.lists(st.integers(min_value=0, max_value=32 * 64 - 1), min_size=1,
                 max_size=200)
    )
    @settings(max_examples=25, deadline=None)
    def test_block_matches_scalar_path(self, addresses):
        """access_block must be semantically identical to access() calls."""
        a = small_cache(assoc=2, lines=8)
        b = small_cache(assoc=2, lines=8)
        scalar_hits = [a.access(addr) for addr in addresses]
        block_hits = b.access_block(np.array(addresses))
        assert scalar_hits == list(block_hits)
        assert a.stats.hits == b.stats.hits
        assert a.stats.evictions == b.stats.evictions


class TestInvariants:
    @given(
        st.integers(min_value=1, max_value=4).map(lambda w: 2**(w - 1)),
        st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                 max_size=300),
    )
    @settings(max_examples=25, deadline=None)
    def test_occupancy_bounded_and_conserved(self, assoc, addresses):
        c = small_cache(assoc=assoc, lines=16)
        c.access_block(np.array(addresses))
        assert c.occupancy() <= c.geometry.num_lines
        assert c.stats.hits + c.stats.misses == len(addresses)
        # Misses that evicted plus occupancy equals total distinct fills.
        assert c.stats.misses == c.stats.evictions + c.occupancy()
