"""Mesh, tile and topology tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import registry
from repro.machine.mesh import ClusterMode, Mesh2D
from repro.machine.tile import Tile
from repro.machine.presets import knl7210, knl7250
from repro.util.units import MiB


class TestTile:
    def test_build(self):
        t = Tile.build(3, 6)
        assert t.core_ids == (6, 7)
        assert t.l2_capacity_bytes == 1 * MiB

    def test_exactly_two_cores(self):
        t = Tile.build(0, 0)
        with pytest.raises(ValueError):
            Tile(tile_id=0, cores=(t.cores[0],) * 3, l2=t.l2)  # type: ignore[arg-type]

    def test_negative_id(self):
        with pytest.raises(ValueError):
            Tile.build(-1, 0)


def small_mesh(n=4, rows=2, cols=2, mode=ClusterMode.QUADRANT) -> Mesh2D:
    tiles = tuple(Tile.build(i, 2 * i) for i in range(n))
    return Mesh2D(rows=rows, cols=cols, tiles=tiles, cluster_mode=mode)


class TestMesh:
    def test_coordinates_row_major(self):
        m = small_mesh()
        assert m.coordinates(0) == (0, 0)
        assert m.coordinates(1) == (0, 1)
        assert m.coordinates(2) == (1, 0)

    def test_hop_distance_manhattan(self):
        m = small_mesh()
        assert m.hop_distance(0, 3) == 2
        assert m.hop_distance(1, 2) == 2
        assert m.hop_distance(0, 0) == 0

    def test_average_hop_symmetric(self):
        m = small_mesh()
        assert m.average_hop_distance() == pytest.approx(4.0 / 3.0)

    def test_single_tile_average(self):
        m = small_mesh(n=1, rows=1, cols=1)
        assert m.average_hop_distance() == 0.0

    def test_tiles_must_fit(self):
        tiles = tuple(Tile.build(i, 2 * i) for i in range(5))
        with pytest.raises(ValueError):
            Mesh2D(rows=2, cols=2, tiles=tiles)

    def test_quadrant_faster_than_all_to_all(self):
        q = small_mesh(mode=ClusterMode.QUADRANT)
        a = small_mesh(mode=ClusterMode.ALL_TO_ALL)
        assert q.directory_lookup_ns() < a.directory_lookup_ns()

    def test_total_l2(self):
        assert small_mesh().total_l2_bytes == 4 * MiB

    def test_cores_enumeration(self):
        assert len(small_mesh().cores()) == 8

    def test_coordinate_range_checked(self):
        with pytest.raises(ValueError):
            small_mesh().coordinates(10)


class TestClosedFormHopDistance:
    """The closed-form mean hop distance must be *bit-identical* to the
    O(n^2) permutation sum it replaced: both reduce to the same exact
    integer pair-distance total divided by the same pair count."""

    def test_matches_permutation_on_registry_machines(self):
        for key in registry.names():
            mesh = registry.build(key).mesh
            assert (
                mesh.average_hop_distance()
                == mesh.average_hop_distance_permutation()
            ), key

    def test_matches_permutation_with_partial_last_row(self):
        for n in (1, 2, 3, 5, 7, 11):
            mesh = small_mesh(n=n, rows=4, cols=3)
            assert (
                mesh.average_hop_distance()
                == mesh.average_hop_distance_permutation()
            ), n

    @settings(max_examples=60, deadline=None)
    @given(
        rows=st.integers(min_value=1, max_value=8),
        cols=st.integers(min_value=1, max_value=8),
        data=st.data(),
    )
    def test_matches_permutation_on_arbitrary_grids(self, rows, cols, data):
        n = data.draw(st.integers(min_value=1, max_value=rows * cols))
        mesh = small_mesh(n=n, rows=rows, cols=cols)
        assert (
            mesh.average_hop_distance()
            == mesh.average_hop_distance_permutation()
        )

    def test_derived_latencies_use_cached_average(self):
        mesh = small_mesh()
        first = mesh.directory_lookup_ns()
        assert "_average_hop_distance" in mesh.__dict__
        assert mesh.directory_lookup_ns() == first
        assert mesh.remote_l2_forward_ns() == mesh.remote_l2_forward_ns()


class TestPresets:
    def test_7210_counts(self):
        m = knl7210()
        assert m.num_cores == 64
        assert m.max_threads == 256
        assert m.mesh.num_tiles == 32
        assert m.total_l2_bytes == 32 * MiB
        assert m.frequency_ghz == pytest.approx(1.3)

    def test_7210_peak_flops(self):
        # 64 cores x 41.6 GF = 2662.4 GF.
        assert knl7210().peak_dp_gflops == pytest.approx(2662.4)

    def test_7250_differs(self):
        m = knl7250()
        assert m.num_cores == 68
        assert m.frequency_ghz == pytest.approx(1.4)

    def test_mesh_l2_sets_fig3_knee(self):
        """'Two mesh L2 cache size' = 64 MB in the paper's Fig. 3 text."""
        assert 2 * knl7210().total_l2_bytes == 64 * MiB

    def test_describe_mentions_key_facts(self):
        text = knl7210().describe()
        assert "64 cores" in text
        assert "quadrant" in text
