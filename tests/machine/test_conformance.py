"""Cross-machine conformance suite.

Every machine in the registry must satisfy the full invariant catalogue
(:mod:`repro.checks`) — the paper's laws are about hybrid-memory systems,
not about KNL specifically.  The suite replays a smoke sweep (one
bandwidth-bound and one latency-bound workload, the paper trio of
configurations, three thread levels) per machine under a
:class:`~repro.checks.CheckingRunner` in ``raise`` mode, then audits the
collected batch with the sweep-scope invariants and the cross-machine
exhibit with the exhibit-scope ones, asserting that *every* registered
invariant actually ran somewhere.
"""

from __future__ import annotations

import pytest

from repro.checks import (
    REGISTRY,
    CheckingRunner,
    Scope,
    check_exhibit,
    check_sweep,
)
from repro.core.configs import ConfigName, make_config
from repro.core.runner import ExperimentRunner
from repro.engine.batch import BatchEvaluator
from repro.figures.machines import generate as generate_machines_exhibit
from repro.machine import registry
from repro.memory.modes import MCDRAMConfig
from repro.runtime.simos import SimulatedOS
from repro.workloads.gups import GUPS
from repro.workloads.minife import MiniFE

RUN_INVARIANTS = {n for n, i in REGISTRY.items() if i.scope is Scope.RUN}
SWEEP_INVARIANTS = {n for n, i in REGISTRY.items() if i.scope is Scope.SWEEP}

MACHINES = registry.names()


def _smoke_cells(machine):
    """The per-machine smoke grid: 2 workloads x trio x 3 thread levels."""
    workloads = (MiniFE.from_matrix_gb(7.2), GUPS.from_table_gb(4.0))
    threads = sorted({1, machine.num_cores, machine.max_threads})
    return [
        (workload, config, t)
        for workload in workloads
        for config in ConfigName.paper_trio()
        for t in threads
    ]


@pytest.mark.parametrize("key", MACHINES)
def test_run_invariants_hold_on_smoke_sweep(key):
    """Every run-scope invariant holds for every cell on every machine."""
    machine = registry.build(key)
    checking = CheckingRunner(ExperimentRunner(machine), mode="raise")
    entries = []
    for workload, config, t in _smoke_cells(machine):
        record = checking.run(workload, config, t)  # raises on violation
        entries.append((workload, make_config(config), t, record))
    assert checking.violation_count == 0
    assert RUN_INVARIANTS <= checking.evaluated_names

    report = check_sweep(entries, machine=machine, axis="threads")
    assert report.ok, [v.describe() for v in report.violations]
    assert SWEEP_INVARIANTS <= set(report.evaluated)


@pytest.mark.parametrize("key", MACHINES)
def test_batch_engine_agrees_with_scalar_runner(key):
    """The columnar engine and the scalar runner are the same model."""
    machine = registry.build(key)
    runner = ExperimentRunner(machine)
    cells = _smoke_cells(machine)
    batch = BatchEvaluator(machine).evaluate(
        [(w, c, t) for w, c, t in cells]
    ).records()
    for (workload, config, t), from_batch in zip(cells, batch):
        scalar = runner.run(workload, config, t)
        assert from_batch.metric == pytest.approx(
            scalar.metric, rel=1e-12, abs=0.0
        ) if scalar.metric is not None else from_batch.metric is None


@pytest.mark.parametrize("key", MACHINES)
def test_near_tier_capacity_enforced(key):
    """Oversubscribing the near tier is infeasible under HBM binding but
    still fits the (larger) far tier on every registered machine."""
    machine = registry.build(key)
    runner = ExperimentRunner(machine)
    over_gb = 1.5 * machine.near_device().capacity_bytes / 1e9
    workload = MiniFE.from_matrix_gb(over_gb)

    bound_near = runner.run(workload, ConfigName.HBM, machine.num_cores)
    assert bound_near.metric is None
    assert "does not fit" in (bound_near.infeasible_reason or "")

    bound_far = runner.run(workload, ConfigName.DRAM, machine.num_cores)
    assert bound_far.metric is not None


@pytest.mark.parametrize("key", ["xeonmax9480", "nvmsim"])
def test_unsupported_mode_rejected(key):
    """Hybrid mode is a KNL boot option; other machines must refuse it."""
    machine = registry.build(key)
    assert "hybrid" not in machine.supported_memory_modes
    with pytest.raises(ValueError, match="does not support"):
        SimulatedOS(MCDRAMConfig.hybrid(0.5), machine=machine)


@pytest.mark.parametrize("key", MACHINES)
def test_declared_modes_all_boot(key):
    """Every mode a spec declares actually boots a memory system."""
    machine = registry.build(key)
    factories = {
        "flat": MCDRAMConfig.flat,
        "cache": MCDRAMConfig.cache,
        "hybrid": lambda: MCDRAMConfig.hybrid(0.5),
    }
    for mode in machine.supported_memory_modes:
        SimulatedOS(factories[mode](), machine=machine)


def test_api_rejects_unsupported_mode_as_validation_error():
    """The wire boundary surfaces an unsupported mode as a typed error,
    not a poisoned batch (Query.machine routes to the right model)."""
    from repro.api.errors import ValidationError
    from repro.api.facade import Predictor
    from repro.api.types import Query

    predictor = Predictor()
    with pytest.raises(ValidationError, match="does not support"):
        predictor.predict(
            Query(
                workload="gups",
                size_gb=4.0,
                config="Hybrid",
                num_threads=16,
                machine="nvmsim",
            )
        )
    # The same config stays valid where the firmware offers the mode.
    ok = predictor.predict(
        Query(
            workload="gups",
            size_gb=4.0,
            config="Hybrid",
            num_threads=16,
            machine="knl7210",
        )
    )
    assert ok.metric is not None


def test_machines_exhibit_passes_exhibit_invariants():
    report = check_exhibit(generate_machines_exhibit())
    assert report.ok, [v.describe() for v in report.violations]
    assert "exhibit-data-sanity" in report.evaluated
