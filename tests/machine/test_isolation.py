"""Machine-isolation regression tests.

Several layers memoize: ``make_config`` is a global ``lru_cache``, the
MCDRAM-cache survival spline caches per anchor set, runners boot memory
systems into thread-local state, and the batch engine memoizes bandwidth
caps per (location, write-fraction).  None of those memos may leak one
machine's numbers into another's — this suite interleaves machines
through every layer and demands that the results match dedicated
single-machine baselines exactly.
"""

from __future__ import annotations

import pytest

from repro.core.configs import ConfigName
from repro.core.runner import ExperimentRunner
from repro.engine.batch import BatchEvaluator
from repro.machine import registry
from repro.workloads.gups import GUPS
from repro.workloads.minife import MiniFE

#: KNL against each non-KNL machine, plus the two non-KNL machines
#: against each other.
PAIRS = [
    ("knl7210", "nvmsim"),
    ("knl7210", "xeonmax9480"),
    ("xeonmax9480", "nvmsim"),
]


def _cells(machine):
    # CACHE exercises the survival-spline memo; HBM the flat near tier;
    # two workloads with different write fractions hit the batch memos.
    return [
        (MiniFE.from_matrix_gb(7.2), ConfigName.CACHE, machine.num_cores),
        (GUPS.from_table_gb(4.0), ConfigName.CACHE, machine.num_cores),
        (MiniFE.from_matrix_gb(7.2), ConfigName.HBM, machine.max_threads),
        (GUPS.from_table_gb(4.0), ConfigName.DRAM, 1),
    ]


def _baseline(key):
    """Records from a dedicated runner that only ever saw this machine."""
    machine = registry.build(key)
    runner = ExperimentRunner(machine)
    return [runner.run(w, c, t) for w, c, t in _cells(machine)]


@pytest.mark.parametrize(("key_a", "key_b"), PAIRS)
def test_interleaved_runners_match_dedicated_baselines(key_a, key_b):
    expected_a, expected_b = _baseline(key_a), _baseline(key_b)
    machine_a, machine_b = registry.build(key_a), registry.build(key_b)
    runner_a, runner_b = ExperimentRunner(machine_a), ExperimentRunner(machine_b)
    cells_a, cells_b = _cells(machine_a), _cells(machine_b)
    # Strict alternation, twice over, so every memo is warm with the
    # *other* machine's entries by the second pass.
    for _ in range(2):
        for (cell_a, want_a), (cell_b, want_b) in zip(
            zip(cells_a, expected_a), zip(cells_b, expected_b)
        ):
            assert runner_a.run(*cell_a) == want_a
            assert runner_b.run(*cell_b) == want_b


@pytest.mark.parametrize(("key_a", "key_b"), PAIRS)
def test_interleaved_batch_evaluators_match_dedicated_baselines(key_a, key_b):
    machine_a, machine_b = registry.build(key_a), registry.build(key_b)
    solo_a = BatchEvaluator(registry.build(key_a))
    solo_b = BatchEvaluator(registry.build(key_b))
    want_a = [r.metric for r in solo_a.evaluate(_cells(machine_a)).records()]
    want_b = [r.metric for r in solo_b.evaluate(_cells(machine_b)).records()]

    eval_a, eval_b = BatchEvaluator(machine_a), BatchEvaluator(machine_b)
    for _ in range(2):
        got_a = [r.metric for r in eval_a.evaluate(_cells(machine_a)).records()]
        got_b = [r.metric for r in eval_b.evaluate(_cells(machine_b)).records()]
        assert got_a == want_a
        assert got_b == want_b


def test_shared_config_objects_are_machine_independent():
    """The global ``make_config`` lru_cache may hand the same frozen
    object to every machine — it encodes mode + numactl only."""
    from repro.core.configs import make_config

    first = make_config(ConfigName.CACHE)
    for key in registry.names():
        runner = ExperimentRunner(registry.build(key))
        record = runner.run(MiniFE.from_matrix_gb(7.2), ConfigName.CACHE, 16)
        assert record.config is ConfigName.CACHE
    assert make_config(ConfigName.CACHE) is first
