"""Core/hardware-thread model tests."""

import pytest

from repro.machine.core import Core, HardwareThread


class TestHardwareThread:
    def test_valid(self):
        t = HardwareThread(3, 2)
        assert (t.core_id, t.slot) == (3, 2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            HardwareThread(-1, 0)
        with pytest.raises(ValueError):
            HardwareThread(0, -1)


class TestCore:
    def test_defaults_are_knl(self):
        c = Core(0)
        assert c.frequency_ghz == pytest.approx(1.3)
        assert c.smt_threads == 4
        assert c.dp_flops_per_cycle == 32.0

    def test_peak_flops(self):
        # 1.3 GHz x 32 DP flops/cycle = 41.6 GFLOP/s per core.
        assert Core(0).peak_dp_gflops == pytest.approx(41.6)

    def test_cycle_ns(self):
        assert Core(0).cycle_ns == pytest.approx(1 / 1.3)

    def test_threads_enumeration(self):
        threads = Core(5).threads()
        assert len(threads) == 4
        assert threads[2] == HardwareThread(5, 2)

    def test_negative_core_id(self):
        with pytest.raises(ValueError):
            Core(-1)


class TestSmtIssue:
    def test_one_thread_cannot_saturate(self):
        c = Core(0)
        assert c.smt_issue_efficiency(1) < c.smt_issue_efficiency(2)

    def test_three_threads_peak(self):
        c = Core(0)
        best = max(c.smt_issue_efficiency(t) for t in (1, 2, 3, 4))
        assert c.smt_issue_efficiency(3) == best

    def test_paper_dgemm_ht_gain(self):
        """Fig. 6a: ~1.7x going from one to three threads per core."""
        c = Core(0)
        gain = c.smt_issue_efficiency(3) / c.smt_issue_efficiency(1)
        assert gain == pytest.approx(1.7, rel=0.05)

    @pytest.mark.parametrize("bad", [0, 5, -1])
    def test_range_checked(self, bad):
        with pytest.raises(ValueError):
            Core(0).smt_issue_efficiency(bad)


class TestOutstandingLines:
    def test_scales_with_threads(self):
        c = Core(0)
        assert c.outstanding_lines(2.0, 2) == pytest.approx(4.0)

    def test_capped_by_superqueue(self):
        c = Core(0)
        assert c.outstanding_lines(13.4, 4) == pytest.approx(17.0)

    def test_sequential_mlp_fills_most_of_queue(self):
        c = Core(0)
        one = c.outstanding_lines(c.mlp_sequential, 1)
        two = c.outstanding_lines(c.mlp_sequential, 2)
        # Second thread adds the remaining headroom: the 1.27x STREAM gain.
        assert two / one == pytest.approx(17.0 / 13.4, rel=1e-6)

    def test_thread_range_checked(self):
        with pytest.raises(ValueError):
            Core(0).outstanding_lines(2.0, 0)
