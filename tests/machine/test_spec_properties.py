"""Property tests for the declarative machine-spec registry.

Three contracts are pinned here:

* ``MachineSpec`` -> ``to_dict`` -> ``from_dict`` is the identity, for
  the registered specs and for hypothesis-perturbed variants (the
  derandomized ``repro`` profile keeps runs reproducible);
* invalid specs are rejected at construction — a zero-bandwidth tier,
  cache/hybrid modes without a cache-capable near tier, unknown or
  duplicate modes never produce a buildable machine;
* content-addressed cache keys are stable: registry-built KNL presets
  fingerprint byte-identically to the pre-registry hand-coded presets
  (so historical on-disk caches stay addressable), while non-KNL
  machines fingerprint their tiers and modes explicitly.
"""

from __future__ import annotations

import dataclasses
import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.configs import ConfigName, make_config
from repro.core.executor import cache_key, machine_fingerprint
from repro.machine import registry
from repro.machine.spec import MEMORY_MODES, MachineSpec, MemoryTierSpec
from repro.workloads.minife import MiniFE

KEYS = st.sampled_from(registry.names())


class TestRoundTrip:
    @pytest.mark.parametrize("key", registry.names())
    def test_registered_specs_round_trip(self, key):
        spec = registry.get(key)
        assert MachineSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("key", registry.names())
    def test_to_dict_is_json_ready(self, key):
        wire = registry.get(key).to_dict()
        assert json.loads(json.dumps(wire)) == wire

    @given(
        key=KEYS,
        frequency_ghz=st.floats(min_value=0.5, max_value=4.0),
        idle_latency_ns=st.floats(min_value=10.0, max_value=500.0),
        capacity_gib=st.integers(min_value=1, max_value=1024),
        stream_write_penalty=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_perturbed_specs_round_trip(
        self,
        key,
        frequency_ghz,
        idle_latency_ns,
        capacity_gib,
        stream_write_penalty,
    ):
        base = registry.get(key)
        spec = dataclasses.replace(
            base,
            core=dataclasses.replace(base.core, frequency_ghz=frequency_ghz),
            far_tier=dataclasses.replace(
                base.far_tier,
                idle_latency_ns=idle_latency_ns,
                capacity_bytes=capacity_gib << 30,
                stream_write_penalty=stream_write_penalty,
            ),
        )
        assert MachineSpec.from_dict(spec.to_dict()) == spec

    @given(key=KEYS)
    def test_round_trip_builds_identical_machines(self, key):
        spec = registry.get(key)
        rebuilt = MachineSpec.from_dict(spec.to_dict()).build()
        original = spec.build()
        assert machine_fingerprint(rebuilt) == machine_fingerprint(original)
        assert rebuilt.describe() == original.describe()


class TestRejection:
    def _tier(self, **overrides) -> MemoryTierSpec:
        fields = dict(
            name="DRAM",
            capacity_bytes=32 << 30,
            channels=4,
            idle_latency_ns=95.0,
            peak_bandwidth=76.8e9,
            stream_efficiency_1t=0.8,
            smt_bandwidth_gain=1.05,
            random_bandwidth_cap=18.0e9,
        )
        fields.update(overrides)
        return MemoryTierSpec(**fields)

    @pytest.mark.parametrize("bandwidth", [0.0, -1.0])
    def test_zero_bandwidth_tier_rejected(self, bandwidth):
        with pytest.raises(ValueError):
            self._tier(peak_bandwidth=bandwidth)
        with pytest.raises(ValueError):
            self._tier(random_bandwidth_cap=bandwidth)

    def test_zero_capacity_tier_rejected(self):
        with pytest.raises(ValueError):
            self._tier(capacity_bytes=0)

    @pytest.mark.parametrize("penalty", [-0.1, 1.1])
    def test_out_of_range_write_penalty_rejected(self, penalty):
        with pytest.raises(ValueError):
            self._tier(stream_write_penalty=penalty)
        with pytest.raises(ValueError):
            self._tier(random_write_penalty=penalty)

    @pytest.mark.parametrize("mode", ["cache", "hybrid"])
    def test_cache_mode_requires_cache_capable_near_tier(self, mode):
        base = registry.get("nvmsim")
        with pytest.raises(ValueError, match="cache-capable"):
            dataclasses.replace(
                base,
                near_tier=dataclasses.replace(
                    base.near_tier, cache_capable=False
                ),
                supported_modes=("flat", mode),
            )

    def test_unknown_and_duplicate_modes_rejected(self):
        base = registry.get("knl7210")
        with pytest.raises(ValueError, match="unknown memory modes"):
            dataclasses.replace(base, supported_modes=("flat", "turbo"))
        with pytest.raises(ValueError, match="duplicate"):
            dataclasses.replace(base, supported_modes=("flat", "flat"))
        with pytest.raises(ValueError, match="at least one"):
            dataclasses.replace(base, supported_modes=())

    def test_bad_keys_rejected(self):
        base = registry.get("knl7210")
        for bad in ("", "KNL7210", "knl 7210", "knl/7210"):
            with pytest.raises(ValueError):
                dataclasses.replace(base, key=bad)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            registry.register(registry.get("knl7210"))

    def test_unknown_machine_lists_registered(self):
        with pytest.raises(KeyError, match="knl7210"):
            registry.get("pdp11")


class TestCacheKeyStability:
    def test_knl_fingerprint_matches_pre_registry_format(self):
        """The registry-built KNL presets must fingerprint with exactly
        the seven historical keys — no tier/mode extras — so every cache
        key ever written for them stays addressable."""
        fingerprint = machine_fingerprint(registry.build("knl7210"))
        assert fingerprint == {
            "name": "Intel Xeon Phi 7210",
            "num_cores": 64,
            "smt_per_core": 4,
            "frequency_ghz": 1.3,
            "tile_l2_bytes": 1 << 20,
            "cluster_mode": "quadrant",
            "peak_dp_gflops": pytest.approx(2662.4),
        }
        assert set(machine_fingerprint(registry.build("knl7250"))) == set(
            fingerprint
        )

    def test_knl_cache_key_pinned(self):
        """Byte-for-byte key stability for a representative cell."""
        key = cache_key(
            registry.build("knl7210"),
            MiniFE.from_matrix_gb(7.2),
            make_config(ConfigName.HBM),
            64,
        )
        assert key == (
            "b48317b6d97bb5a954f4ac0c7e392f0c"
            "301e76e282977f5f2d5987c7026e7254"
        )

    @pytest.mark.parametrize("key", ["xeonmax9480", "nvmsim"])
    def test_non_knl_fingerprint_carries_tiers_and_modes(self, key):
        fingerprint = machine_fingerprint(registry.build(key))
        assert set(fingerprint["memory_tiers"]) == {"near", "far"}
        assert fingerprint["memory_modes"] == ["flat", "cache"]

    def test_distinct_machines_get_distinct_cache_keys(self):
        workload = MiniFE.from_matrix_gb(7.2)
        config = make_config(ConfigName.DRAM)
        keys = {
            cache_key(registry.build(name), workload, config, 16)
            for name in registry.names()
        }
        assert len(keys) == len(registry.names())

    @given(key=KEYS)
    def test_fingerprint_is_deterministic(self, key):
        assert machine_fingerprint(registry.build(key)) == machine_fingerprint(
            registry.build(key)
        )


class TestRegistrySurface:
    def test_names_order_and_minimum_size(self):
        names = registry.names()
        assert names[:2] == ("knl7210", "knl7250")
        assert len(names) >= 3  # the zoo: KNL presets plus non-KNL machines

    def test_specs_align_with_names(self):
        assert tuple(s.key for s in registry.specs()) == registry.names()

    @pytest.mark.parametrize("key", registry.names())
    def test_supported_modes_are_canonical_subset(self, key):
        modes = registry.get(key).supported_modes
        assert set(modes) <= set(MEMORY_MODES)
        assert "flat" in modes  # every machine can run flat
