"""Thread placement tests."""

import pytest

from repro.machine.presets import knl7210


@pytest.fixture(scope="module")
def m():
    return knl7210()


class TestPlacement:
    @pytest.mark.parametrize(
        "threads,per_core,active",
        [(64, 1, 64), (128, 2, 64), (192, 3, 64), (256, 4, 64)],
    )
    def test_paper_thread_counts(self, m, threads, per_core, active):
        p = m.place_threads(threads)
        assert p.threads_per_core == per_core
        assert p.active_cores == active
        assert p.extra_cores == 0
        assert p.max_threads_per_core == per_core

    def test_partial_node(self, m):
        p = m.place_threads(32)
        assert p.active_cores == 32
        assert p.threads_per_core == 1

    def test_uneven_count(self, m):
        p = m.place_threads(100)
        assert p.active_cores == 64
        assert p.threads_per_core == 1
        assert p.extra_cores == 36
        assert p.max_threads_per_core == 2

    def test_over_capacity_rejected(self, m):
        with pytest.raises(ValueError, match="exceed"):
            m.place_threads(257)

    def test_zero_rejected(self, m):
        with pytest.raises(ValueError):
            m.place_threads(0)

    def test_total_thread_conservation(self, m):
        for n in (1, 63, 64, 65, 100, 129, 255, 256):
            p = m.place_threads(n)
            if n <= m.num_cores:
                total = p.active_cores * p.threads_per_core
            else:
                total = (
                    p.active_cores * p.threads_per_core + p.extra_cores
                )
            assert total == n
