"""CLI tests."""

import json

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "table1" in out

    def test_describe(self, capsys):
        assert main(["describe"]) == 0
        assert "Xeon Phi" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "XSBench" in capsys.readouterr().out

    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "Gap (%)" in out

    def test_advisor(self, capsys):
        assert main(["advisor", "minife", "--size-gb", "7.2"]) == 0
        out = capsys.readouterr().out
        assert "use HBM" in out

    def test_advisor_xsbench_threads(self, capsys):
        assert main(
            ["advisor", "xsbench", "--size-gb", "11.3", "--threads", "256"]
        ) == 0
        assert "use HBM" in capsys.readouterr().out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["fig99"])


class TestCLIExtensions:
    def test_fig1(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["fig1"]) == 0
        assert "[L2 1MB]" in capsys.readouterr().out

    def test_decompose(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(
            ["decompose", "minife", "--total-gb", "96", "--nodes", "4", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "8 nodes" in out
        assert "HBM" in out

    def test_energy(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["energy", "minife", "--size-gb", "7.2"]) == 0
        assert "EDP" in capsys.readouterr().out

    def test_optimize(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["optimize", "minife", "--size-gb", "7.2"]) == 0
        out = capsys.readouterr().out
        assert "x-vector -> dram" in out
        assert "stiffness-matrix -> hbm" in out


class TestCLIExecutor:
    def test_jobs_output_identical_to_serial(self, capsys):
        assert main(["fig5"]) == 0
        serial = capsys.readouterr().out
        assert main(["--jobs", "4", "fig5"]) == 0
        captured = capsys.readouterr()
        assert captured.out == serial
        assert "[executor]" in captured.err

    def test_cache_dir_populated(self, capsys, tmp_path):
        assert main(["--cache-dir", str(tmp_path), "fig5"]) == 0
        capsys.readouterr()
        assert list(tmp_path.glob("*.json"))

    def test_bad_executor_rejected(self):
        with pytest.raises(SystemExit):
            main(["--executor", "gpu", "fig5"])


class TestCLIObservability:
    def test_trace_and_metrics_files_written(self, capsys, tmp_path):
        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.json"
        args = [
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
            "fig5",
        ]
        assert main(args) == 0
        captured = capsys.readouterr()
        assert "[obs]" in captured.err

        trace_doc = json.loads(trace_path.read_text())
        events = trace_doc["traceEvents"]
        assert events[0]["ph"] == "M"  # process-name metadata
        # Dense sweeps go through the columnar batch engine, which emits
        # one aggregate span per miss batch instead of per-point
        # perfmodel.run spans.
        assert any(
            e["ph"] == "X" and e["name"] in ("batch.evaluate", "perfmodel.run")
            for e in events
        )

        metrics_doc = json.loads(metrics_path.read_text())
        assert metrics_doc["counters"]["model.runs"] > 0
        assert metrics_doc["cells"]  # per-cell sweep breakdown
        assert all("wall_ns" in cell for cell in metrics_doc["cells"])

    def test_stdout_identical_with_observability(self, capsys, tmp_path):
        assert main(["fig5"]) == 0
        plain = capsys.readouterr().out
        assert main(["--metrics-out", str(tmp_path / "m.json"), "fig5"]) == 0
        observed = capsys.readouterr()
        assert observed.out == plain

    def test_env_enables_observability(self, capsys, tmp_path, monkeypatch):
        metrics_path = tmp_path / "m.json"
        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setenv("REPRO_METRICS_OUT", str(metrics_path))
        assert main(["fig5"]) == 0
        assert "[obs]" in capsys.readouterr().err
        assert json.loads(metrics_path.read_text())["counters"]

    def test_falsy_env_keeps_fast_path(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert main(["table1"]) == 0
        assert "[obs]" not in capsys.readouterr().err

    def test_session_uninstalled_after_run(self, capsys, tmp_path):
        from repro import obs

        assert main(["--metrics-out", str(tmp_path / "m.json"), "table1"]) == 0
        capsys.readouterr()
        assert not obs.enabled()
