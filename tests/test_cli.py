"""CLI tests."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "table1" in out

    def test_describe(self, capsys):
        assert main(["describe"]) == 0
        assert "Xeon Phi" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "XSBench" in capsys.readouterr().out

    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "Gap (%)" in out

    def test_advisor(self, capsys):
        assert main(["advisor", "minife", "--size-gb", "7.2"]) == 0
        out = capsys.readouterr().out
        assert "use HBM" in out

    def test_advisor_xsbench_threads(self, capsys):
        assert main(
            ["advisor", "xsbench", "--size-gb", "11.3", "--threads", "256"]
        ) == 0
        assert "use HBM" in capsys.readouterr().out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["fig99"])


class TestCLIExtensions:
    def test_fig1(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["fig1"]) == 0
        assert "[L2 1MB]" in capsys.readouterr().out

    def test_decompose(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(
            ["decompose", "minife", "--total-gb", "96", "--nodes", "4", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "8 nodes" in out
        assert "HBM" in out

    def test_energy(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["energy", "minife", "--size-gb", "7.2"]) == 0
        assert "EDP" in capsys.readouterr().out

    def test_optimize(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["optimize", "minife", "--size-gb", "7.2"]) == 0
        out = capsys.readouterr().out
        assert "x-vector -> dram" in out
        assert "stiffness-matrix -> hbm" in out


class TestCLIExecutor:
    def test_jobs_output_identical_to_serial(self, capsys):
        assert main(["fig5"]) == 0
        serial = capsys.readouterr().out
        assert main(["--jobs", "4", "fig5"]) == 0
        captured = capsys.readouterr()
        assert captured.out == serial
        assert "[executor]" in captured.err

    def test_cache_dir_populated(self, capsys, tmp_path):
        assert main(["--cache-dir", str(tmp_path), "fig5"]) == 0
        capsys.readouterr()
        assert list(tmp_path.glob("*.json"))

    def test_bad_executor_rejected(self):
        with pytest.raises(SystemExit):
            main(["--executor", "gpu", "fig5"])
