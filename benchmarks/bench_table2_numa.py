"""Table II: NUMA distances under flat and cache MCDRAM modes."""

from repro.figures.table2 import generate


def test_table2_numa_distances(benchmark, record_exhibit):
    exhibit = benchmark(generate)
    record_exhibit(exhibit)
    assert exhibit.data["flat_distances"] == [[10, 31], [31, 10]]
    assert exhibit.data["cache_distances"] == [[10]]
    assert exhibit.data["flat_capacities_gb"] == [96, 16]
    print(exhibit.render())
