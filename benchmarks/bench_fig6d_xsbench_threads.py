"""Fig. 6d: XSBench lookups/s vs thread count.

Shape: HBM reaches ~2.5x at 256 threads, DRAM ~1.5x; the best
configuration flips from DRAM (64 threads) to HBM (256 threads).
"""

import pytest

from repro.figures.fig6 import generate_d


def test_fig6d_xsbench_threads(benchmark, runner, record_exhibit):
    exhibit = benchmark(generate_d, runner)
    record_exhibit(exhibit)
    threads = exhibit.data["threads"]
    hbm_speedup = dict(zip(threads, exhibit.data["speedup_vs_64"]["HBM"]))
    dram_speedup = dict(zip(threads, exhibit.data["speedup_vs_64"]["DRAM"]))
    assert hbm_speedup[256] == pytest.approx(2.5, rel=0.1)
    assert dram_speedup[256] == pytest.approx(1.5, rel=0.1)
    at = lambda name, t: dict(zip(threads, exhibit.data[name]))[t]
    assert at("DRAM", 64) > at("HBM", 64)
    assert at("HBM", 256) > at("DRAM", 256)
    print(exhibit.render())
