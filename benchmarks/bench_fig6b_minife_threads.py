"""Fig. 6b: MiniFE CG MFLOPS vs thread count.

Shape: HBM gains with hardware threads, reaching ~3.8x over the DRAM
64-thread baseline; the DRAM speedup line stays near 1.
"""

import pytest

from repro.figures.fig6 import generate_b


def test_fig6b_minife_threads(benchmark, runner, record_exhibit):
    exhibit = benchmark(generate_b, runner)
    record_exhibit(exhibit)
    threads = exhibit.data["threads"]
    dram64 = dict(zip(threads, exhibit.data["DRAM"]))[64]
    best_hbm = max(v for v in exhibit.data["HBM"] if v is not None)
    assert best_hbm / dram64 == pytest.approx(3.8, rel=0.15)
    dram_speedups = [
        v for v in exhibit.data["speedup_vs_64"]["DRAM"] if v is not None
    ]
    assert all(0.9 <= v <= 1.1 for v in dram_speedups)
    print(exhibit.render())
