"""Benchmark harness fixtures.

Every bench regenerates one paper exhibit (or ablation), asserts its key
shape, and writes the reproduced rows/series to ``benchmarks/output/`` so
the numbers the paper reports can be inspected after a run.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core.executor import executor_from_env
from repro.core.runner import ExperimentRunner

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def runner():
    """Serial runner by default; set REPRO_JOBS / REPRO_EXECUTOR /
    REPRO_CACHE_DIR to regenerate exhibits through the parallel,
    memoizing executor (outputs are byte-identical either way)."""
    return executor_from_env(ExperimentRunner())


@pytest.fixture(scope="session")
def record_exhibit():
    """Writer: record_exhibit(exhibit) -> path of the text dump."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _record(exhibit) -> pathlib.Path:
        path = OUTPUT_DIR / f"{exhibit.exhibit_id}.txt"
        path.write_text(exhibit.render() + "\n")
        return path

    return _record


@pytest.fixture(scope="session")
def record_text():
    """Writer for non-Exhibit ablation output."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> pathlib.Path:
        path = OUTPUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return _record
