"""Ablation: data-movement energy across configurations.

The paper motivates HBM partly through data-movement cost (citing Kestor
et al.'s energy study).  This extension prices each configuration: for a
bandwidth-bound application HBM wins on time *and* energy; for a
latency-bound one DRAM's shorter runtime wins total energy even though
HBM moves bytes more cheaply.
"""

import pytest

from repro.core.report import energy_comparison
from repro.core.configs import ConfigName
from repro.core.runner import ExperimentRunner
from repro.engine.energy import EnergyModel
from repro.workloads.gups import GUPS
from repro.workloads.minife import MiniFE


def run_ablation(runner: ExperimentRunner):
    model = EnergyModel()
    out = {}
    for label, workload in (
        ("minife", MiniFE.from_matrix_gb(7.2)),
        ("gups", GUPS.from_table_gb(8.0)),
    ):
        profile = workload.profile()
        per_config = {}
        for config in ConfigName.paper_trio():
            record = runner.run(workload, config, 64)
            assert record.run_result is not None
            estimate = model.estimate(profile, record.run_result)
            per_config[config] = (record.run_result.time_s, estimate.total_j)
        out[label] = per_config
    return out


def test_ablation_energy(benchmark, runner, record_text):
    results = benchmark(run_ablation, runner)
    text = "\n\n".join(
        energy_comparison(w, runner=runner).render()
        for w in (MiniFE.from_matrix_gb(7.2), GUPS.from_table_gb(8.0))
    )
    record_text("ablation_energy", text)
    print(text)
    minife = results["minife"]
    gups = results["gups"]
    # Bandwidth-bound: HBM wins time and total energy.
    assert minife[ConfigName.HBM][0] < minife[ConfigName.DRAM][0]
    assert minife[ConfigName.HBM][1] < minife[ConfigName.DRAM][1]
    # Latency-bound: DRAM wins total energy despite pricier byte transfers.
    assert gups[ConfigName.DRAM][1] < gups[ConfigName.HBM][1]
