"""Fig. 4e: XSBench lookups/s vs problem size, three configurations.

Shape: DRAM best at one hardware thread per core; performance declines
gently with footprint; HBM absent beyond 16 GB.
"""

from repro.figures.fig4 import generate_e


def test_fig4e_xsbench(benchmark, runner, record_exhibit):
    exhibit = benchmark(generate_e, runner)
    record_exhibit(exhibit)
    sizes = exhibit.data["sizes_gb"]
    dram = dict(zip(sizes, exhibit.data["DRAM"]))
    hbm = dict(zip(sizes, exhibit.data["HBM"]))
    assert hbm[5.6] is not None and hbm[22.5] is None
    assert dram[5.6] > hbm[5.6]
    assert dram[5.6] > dram[90.0]  # gentle decline with size
    assert 2e6 <= dram[5.6] <= 3.5e6  # paper's y-axis scale
    print(exhibit.render())
