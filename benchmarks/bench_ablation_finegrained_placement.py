"""Ablation: fine-grained per-structure placement (the paper's future work).

Section VI: "In the future, we plan to investigate a finer-grained
approach in which we can apply our conclusions to individual data
structures."  Here MiniFE's structures are placed individually through
the memkind-style allocator: the bandwidth-hungry matrix goes to HBM, the
latency-sensitive gather vector to DRAM, and the small CG vectors to HBM.
For problems whose *matrix* fits HBM but whose total does not, this beats
every coarse configuration.
"""

import pytest

from repro.engine.perfmodel import PerformanceModel
from repro.engine.placement import Location, PlacementMix
from repro.memory.allocator import Kind
from repro.memory.modes import MCDRAMConfig
from repro.runtime.simos import SimulatedOS
from repro.core.configs import ConfigName
from repro.util.tables import TextTable
from repro.workloads.minife import MiniFE

MATRIX_GB = 15.5  # matrix alone fits HBM; matrix + vectors do not


def run_ablation(runner):
    workload = MiniFE.from_matrix_gb(MATRIX_GB)
    coarse = {
        name.value: runner.run(workload, name, 64).metric
        for name in ConfigName.paper_trio()
    }
    # Fine-grained: allocate each structure with its own memkind kind.
    sim_os = SimulatedOS(MCDRAMConfig.flat(), machine=runner.machine)
    with sim_os.allocation_scope():
        matrix = sim_os.malloc(
            "matrix", workload.matrix_bytes, kind=Kind.HBW_PREFERRED
        )
        vectors = sim_os.malloc(
            "cg-vectors", workload.vector_bytes, kind=Kind.HBW_PREFERRED
        )
        mixes = {
            "spmv-stream": PlacementMix.from_allocation_split(matrix.split),
            # The gather reads the x vector wherever the vectors landed.
            "spmv-gather": PlacementMix.from_allocation_split(vectors.split),
            "vector-ops": PlacementMix.from_allocation_split(vectors.split),
        }
        model = PerformanceModel(runner.machine, sim_os.memory)
        run = model.run(workload.profile(), mixes, 64)
        fine = workload.metric(run)
        hbm_fraction = sim_os.allocator.hbm_fraction()
    return workload, coarse, fine, hbm_fraction


def test_ablation_finegrained_placement(benchmark, runner, record_text):
    workload, coarse, fine, hbm_fraction = benchmark(run_ablation, runner)
    table = TextTable(
        ["placement", "CG MFLOPS"],
        title=(
            f"Ablation: fine-grained memkind placement, MiniFE "
            f"{MATRIX_GB:g} GB matrix"
        ),
    )
    for name, value in coarse.items():
        table.add_row([name, "-" if value is None else f"{value:.4g}"])
    table.add_row(
        [f"fine-grained ({hbm_fraction:.0%} bytes in HBM)", f"{fine:.4g}"]
    )
    text = table.render()
    record_text("ablation_finegrained_placement", text)
    print(text)
    # Fine-grained placement must beat every coarse feasible configuration
    # at this size (the whole problem no longer fits HBM cleanly, but the
    # hot structures do).
    feasible = [v for v in coarse.values() if v is not None]
    assert fine >= max(feasible) * 0.99
    assert fine > coarse["DRAM"] * 2.0
