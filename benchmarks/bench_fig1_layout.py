"""Fig. 1: the modelled node layout (tiles, L2 slices, both memories)."""

from repro.figures.fig1 import generate


def test_fig1_layout(benchmark, record_exhibit):
    exhibit = benchmark(generate)
    record_exhibit(exhibit)
    assert exhibit.data["tiles"] == 32
    assert exhibit.data["cores"] == 64
    assert exhibit.data["mcdram_gb"] == 16
    assert exhibit.data["ddr_gb"] == 96
    print(exhibit.render())
