"""Engine perf trajectory: scalar vs columnar batch throughput.

Unlike the exhibit benches, this one measures the reproduction *engine*
itself: a 10k-point query grid through the per-point
:class:`~repro.core.runner.ExperimentRunner` loop versus
:class:`~repro.engine.batch.BatchEvaluator`, with bit-identity verified
on a sample before any speedup is recorded.  Results are written to
``BENCH_engine.json`` at the repo root (the perf trajectory CI tracks)
in addition to the usual ``benchmarks/output/`` text dump.

The floors asserted here are deliberately conservative (steady-state
measures ~150x and cache-warmed first touch ~130x on an idle machine) so
CI noise cannot fail the build while a real regression — e.g. the batch
path silently falling back to per-point evaluation, or the warm path
rebuilding tables it should have loaded from the persistent cache —
still does.
"""

import pathlib

from repro.core.perfbench import measure_engine, write_bench_json
from repro.machine import registry

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

SPEEDUP_FLOOR = 10.0
#: First evaluation of a fresh evaluator against a *populated* table
#: cache must stay well ahead of the scalar loop: table loading, not
#: rebuilding, is what a restarted service pays (docs/ENGINE.md).
WARM_SPEEDUP_FLOOR = 30.0


def test_engine_throughput(benchmark, record_text):
    result = benchmark.pedantic(measure_engine, rounds=1, iterations=1)
    write_bench_json(result, REPO_ROOT / "BENCH_engine.json")
    record_text("engine_throughput", result.describe())
    print(result.describe())

    assert result.grid_points >= 10_000
    assert result.identity_checked_points > 0
    # Conservative floors: the batch engine must stay an order of
    # magnitude ahead of the scalar loop (steady state and cache-warmed
    # first touch alike), and the optimized event loop must not regress
    # to (or below) its reference implementation.
    assert result.speedup_hot >= SPEEDUP_FLOOR, result.describe()
    assert result.speedup_warm >= WARM_SPEEDUP_FLOOR, result.describe()
    assert result.eventsim_speedup >= 1.0, result.describe()


def test_engine_throughput_non_knl(benchmark, record_text):
    """The batch engine's 10x floor is a property of the columnar layout,
    not of the KNL tables — it must hold on a registry machine with a
    different tier pair and a shorter thread ladder (Xeon Max: SMT2, so
    112 hardware threads instead of 256)."""
    machine = registry.build("xeonmax9480")
    result = benchmark.pedantic(
        lambda: measure_engine(2_520, machine=machine),
        rounds=1,
        iterations=1,
    )
    record_text("engine_throughput_xeonmax9480", result.describe())
    print(result.describe())

    assert result.grid_points >= 2_520
    assert result.identity_checked_points > 0
    assert result.speedup_hot >= SPEEDUP_FLOOR, result.describe()
