"""Engine perf trajectory: scalar vs columnar batch throughput.

Unlike the exhibit benches, this one measures the reproduction *engine*
itself: a 10k-point query grid through the per-point
:class:`~repro.core.runner.ExperimentRunner` loop versus
:class:`~repro.engine.batch.BatchEvaluator`, with bit-identity verified
on a sample before any speedup is recorded.  Results are written to
``BENCH_engine.json`` at the repo root (the perf trajectory CI tracks;
each run *appends* to the file's ``history`` list rather than erasing
the trajectory) in addition to the usual ``benchmarks/output/`` text
dump.

Floor recalibration (2026-08): the scalar hot path was overhauled
(closed-form mesh coherence timing plus memoized machine, placement,
numactl, profile and MCDRAM hit-rate chains), dropping the scalar
baseline from ~690 us/point to ~55-70 us/point.  A ~10x faster
denominator compresses every batch-over-scalar ratio — steady state
went from ~157x to ~13x with the batch path *unchanged* — so the floors
below are lower than they were while guarding a strictly faster engine.
The scalar ceiling is the new guard that keeps the overhaul honest.
The floors stay deliberately conservative so CI noise cannot fail the
build while a real regression — the batch path silently falling back to
per-point evaluation, the warm path rebuilding tables it should have
loaded, the scalar memos being lost — still does.
"""

import pathlib

from repro.core.perfbench import measure_engine, write_bench_json
from repro.machine import registry

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Steady-state batch speedup over the scalar loop (measured ~13x).
SPEEDUP_FLOOR = 5.0
#: First evaluation of a fresh evaluator against a *populated* table
#: cache must stay comfortably ahead of the scalar loop: table loading,
#: not rebuilding, is what a restarted service pays (docs/ENGINE.md).
#: Measured ~8x against the overhauled scalar baseline.
WARM_SPEEDUP_FLOOR = 3.0
#: The scalar loop itself must stay an order of magnitude below its old
#: 690 us/point baseline (measured ~55-70 us/point after the overhaul).
SCALAR_US_PER_POINT_CEILING = 250.0
#: Optimized event core at the historical 512-in-flight point (served
#: by the scalar core; measured ~4.3x over the reference loop).
EVENTSIM_SPEEDUP_FLOOR = 2.0
#: Optimized event core at the 2048-in-flight point (served by the
#: numpy-batched core; measured ~10x over the reference loop).
EVENTSIM_VECTOR_SPEEDUP_FLOOR = 4.0


def test_engine_throughput(benchmark, record_text):
    result = benchmark.pedantic(measure_engine, rounds=1, iterations=1)
    write_bench_json(result, REPO_ROOT / "BENCH_engine.json")
    record_text("engine_throughput", result.describe())
    print(result.describe())

    assert result.grid_points >= 10_000
    assert result.identity_checked_points > 0
    # Conservative bounds: the scalar loop must hold its overhauled
    # per-point cost, the batch engine must stay well ahead of it
    # (steady state and cache-warmed first touch alike), and both event
    # cores must stay well ahead of the reference loop.
    assert (
        result.scalar_us_per_point <= SCALAR_US_PER_POINT_CEILING
    ), result.describe()
    assert result.speedup_hot >= SPEEDUP_FLOOR, result.describe()
    assert result.speedup_warm >= WARM_SPEEDUP_FLOOR, result.describe()
    assert result.eventsim_speedup >= EVENTSIM_SPEEDUP_FLOOR, result.describe()
    assert (
        result.eventsim_vector_speedup >= EVENTSIM_VECTOR_SPEEDUP_FLOOR
    ), result.describe()


def test_engine_throughput_non_knl(benchmark, record_text):
    """The batch engine's speedup floor is a property of the columnar
    layout, not of the KNL tables — it must hold on a registry machine
    with a different tier pair and a shorter thread ladder (Xeon Max:
    SMT2, so 112 hardware threads instead of 256)."""
    machine = registry.build("xeonmax9480")
    result = benchmark.pedantic(
        lambda: measure_engine(2_520, machine=machine),
        rounds=1,
        iterations=1,
    )
    record_text("engine_throughput_xeonmax9480", result.describe())
    print(result.describe())

    assert result.grid_points >= 2_520
    assert result.identity_checked_points > 0
    assert result.speedup_hot >= SPEEDUP_FLOOR, result.describe()
