"""Fig. 4a: DGEMM GFLOPS vs array size, three configurations.

Shape: HBM ~2x DRAM wherever it fits; missing at 24 GB; cache in between.
"""

import pytest

from repro.figures.fig4 import generate_a


def test_fig4a_dgemm(benchmark, runner, record_exhibit):
    exhibit = benchmark(generate_a, runner)
    record_exhibit(exhibit)
    improvements = [v for v in exhibit.data["hbm_improvement"] if v is not None]
    assert all(1.8 <= v <= 2.3 for v in improvements)
    sizes = exhibit.data["sizes_gb"]
    assert dict(zip(sizes, exhibit.data["HBM"]))[24.0] is None
    # Absolute scale: hundreds of GFLOPS, like the paper's y-axis.
    dram = dict(zip(sizes, exhibit.data["DRAM"]))[6.0]
    assert 2e11 <= dram <= 4e11
    print(exhibit.render())
