"""Fig. 4c: GUPS vs table size, three configurations.

Shape: a narrow ~1e-2 GUPS band across 1-32 GiB tables, DRAM never worse
than HBM or cache mode.
"""

from repro.figures.fig4 import generate_c


def test_fig4c_gups(benchmark, runner, record_exhibit):
    exhibit = benchmark(generate_c, runner)
    record_exhibit(exhibit)
    sizes = exhibit.data["sizes_gb"]
    dram = dict(zip(sizes, exhibit.data["DRAM"]))
    for other in ("HBM", "Cache Mode"):
        for size, value in zip(sizes, exhibit.data[other]):
            if value is not None:
                assert dram[size] >= value
    defined = [v for v in dram.values() if v is not None]
    assert max(defined) / min(defined) < 1.3  # the paper's narrow band
    assert 0.8e-2 <= min(defined) and max(defined) <= 1.3e-2
    print(exhibit.render())
