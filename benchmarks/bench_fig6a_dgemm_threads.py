"""Fig. 6a: DGEMM GFLOPS vs thread count.

Shape: ~1.7x on HBM from 64 to 192 threads; the 256-thread run fails
(paper footnote 1); DRAM stays flat (memory-bound).
"""

import pytest

from repro.figures.fig6 import generate_a


def test_fig6a_dgemm_threads(benchmark, runner, record_exhibit):
    exhibit = benchmark(generate_a, runner)
    record_exhibit(exhibit)
    speedup = dict(
        zip(exhibit.data["threads"], exhibit.data["speedup_vs_64"]["HBM"])
    )
    assert speedup[192] == pytest.approx(1.7, rel=0.05)
    assert speedup[256] is None  # run cannot complete
    dram = dict(zip(exhibit.data["threads"], exhibit.data["DRAM"]))
    assert dram[192] / dram[64] < 1.1
    print(exhibit.render())
