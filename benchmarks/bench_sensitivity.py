"""Sensitivity study: the paper's conclusions under calibration error.

Perturbs every calibrated device characteristic by +-20% and re-checks
the Section VI conclusions.  Expected outcome: everything holds except
one physically meaningful flip — HBM latency 20% *lower* (i.e., below
DDR4's) inverts the random-access DRAM preference, because that
preference is *caused* by HBM's higher latency.
"""

import pytest

from repro.core.sensitivity import SensitivityAnalysis
from repro.util.tables import TextTable


def run_study():
    analysis = SensitivityAnalysis()
    return analysis.run()


def test_sensitivity(benchmark, record_text):
    results = benchmark(run_study)
    perturbations = sorted({r.perturbation for r in results})
    conclusions = sorted({r.conclusion for r in results})
    table = TextTable(
        ["perturbation"] + conclusions,
        title="Sensitivity: +-20% on device characteristics",
        align=["l"] + ["c"] * len(conclusions),
    )
    by_cell = {(r.perturbation, r.conclusion): r.holds for r in results}
    for p in perturbations:
        table.add_row(
            [p] + ["ok" if by_cell[(p, c)] else "FLIP" for c in conclusions]
        )
    text = table.render()
    record_text("sensitivity", text)
    print(text)
    flipped = SensitivityAnalysis.flipped(results)
    assert len(flipped) <= 1
    for r in flipped:
        assert (r.perturbation, r.conclusion) == (
            "hbm-latency -20%",
            "dram-best-for-xsbench-at-1tpc",
        )
