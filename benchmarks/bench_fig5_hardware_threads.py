"""Fig. 5: STREAM bandwidth vs hardware threads per core.

Shape: HBM ht=2 is 1.27x ht=1 (~420 GB/s) and ht=2..4 cluster together;
the four DRAM lines overlap at ~77-80 GB/s.
"""

import pytest

from repro.figures.fig5 import generate


def test_fig5_hardware_threads(benchmark, runner, record_exhibit):
    exhibit = benchmark(generate, runner)
    record_exhibit(exhibit)
    hbm1 = exhibit.data["HBM (ht=1)"]
    hbm2 = exhibit.data["HBM (ht=2)"]
    for a, b in zip(hbm1, hbm2):
        assert b / a == pytest.approx(1.27, rel=0.01)
        assert b == pytest.approx(419.0, rel=0.01)
    for i in range(len(exhibit.data["sizes_gb"])):
        dram = [exhibit.data[f"DRAM (ht={h})"][i] for h in (1, 2, 3, 4)]
        assert max(dram) / min(dram) < 1.05
    print(exhibit.render())
