"""Fig. 2: STREAM triad bandwidth under the three memory configurations.

Paper rows reproduced: DRAM ~77 GB/s flat; HBM ~330 GB/s, absent beyond
16 GB; cache mode 260 GB/s @ 8 GB, 125 GB/s @ 11.4 GB, below DRAM from
~24 GB.
"""

import pytest

from repro.figures.fig2 import generate


def test_fig2_stream_bandwidth(benchmark, runner, record_exhibit):
    exhibit = benchmark(generate, runner)
    record_exhibit(exhibit)
    sizes = exhibit.data["sizes_gb"]
    cache = dict(zip(sizes, exhibit.data["Cache Mode"]))
    hbm = dict(zip(sizes, exhibit.data["HBM"]))
    dram = dict(zip(sizes, exhibit.data["DRAM"]))
    assert dram[8] == pytest.approx(77.0, rel=0.02)
    assert hbm[8] == pytest.approx(330.0, rel=0.02)
    assert hbm[24] is None
    assert cache[8] == pytest.approx(260.0, rel=0.03)
    assert cache[11.4] == pytest.approx(125.0, rel=0.03)
    assert cache[24] < dram[24]
    print(exhibit.render())
