"""Ablation: multi-node decomposition sizing (Section IV-C's guideline).

Sweep the node count for a 96 GB MiniFE problem: aggregate throughput
jumps once per-node sub-problems fit the 16 GB HBM — the paper's
"decompose so each compute node is assigned a sub-problem close to the
HBM capacity".
"""

import pytest

from repro.core.configs import ConfigName
from repro.core.decomposition import hbm_knee, sweep_node_counts
from repro.util.tables import TextTable
from repro.workloads.minife import MiniFE

TOTAL_GB = 96.0
NODE_COUNTS = [2, 4, 6, 8, 12, 16]


def run_ablation(runner):
    return sweep_node_counts(
        MiniFE.from_matrix_gb, TOTAL_GB, NODE_COUNTS, runner=runner
    )


def test_ablation_decomposition(benchmark, runner, record_text):
    points = benchmark(run_ablation, runner)
    table = TextTable(
        ["nodes", "per-node (GB)", "best config", "aggregate CG MFLOPS",
         "parallel eff."],
        title=f"Ablation: decomposition of a {TOTAL_GB:g} GB MiniFE problem",
    )
    for p in points:
        table.add_row(
            [
                p.nodes,
                f"{p.per_node_gb:.1f}",
                p.best_config.value if p.best_config else "-",
                "-" if p.aggregate_metric is None else f"{p.aggregate_metric:.3g}",
                f"{p.parallel_efficiency:.3f}",
            ]
        )
    text = table.render()
    record_text("ablation_decomposition", text)
    print(text)
    by_nodes = {p.nodes: p for p in points}
    # Sub-problems larger than HBM run on DRAM/cache; once they fit, the
    # best config flips to HBM and aggregate throughput jumps superlinearly.
    assert by_nodes[4].best_config is not ConfigName.HBM
    assert by_nodes[8].best_config is ConfigName.HBM
    jump = by_nodes[8].aggregate_metric / by_nodes[4].aggregate_metric
    assert jump > 3.0  # far beyond the 2x node-count increase
    knee = hbm_knee(points)
    assert knee is not None and knee.nodes <= 8
