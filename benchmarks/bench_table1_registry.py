"""Table I: the evaluated-application registry."""

from repro.figures.table1 import generate


def test_table1_registry(benchmark, record_exhibit):
    exhibit = benchmark(generate)
    record_exhibit(exhibit)
    assert [row[0] for row in exhibit.data["rows"]] == [
        "DGEMM", "MiniFE", "GUPS", "Graph500", "XSBench",
    ]
    print(exhibit.render())
