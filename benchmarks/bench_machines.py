"""Machine zoo: the paper trio replayed across every registry machine.

Shape: the near tier wins the sequential solver on every machine; the
lower-idle-latency tier wins the random kernel at one thread per core —
DRAM on both KNL presets and on Xeon Max, the near DRAM tier on the
emulated DRAM+NVM node (where NVM is the slow far tier).
"""

from repro.figures.machines import generate
from repro.machine import registry


def test_machines_zoo(benchmark, record_exhibit):
    exhibit = benchmark(generate)
    record_exhibit(exhibit)
    assert exhibit.data["machines"] == list(registry.names())
    for key in registry.names():
        rows = {(r["workload"], r["threads"]): r for r in exhibit.data[key]}
        machine = registry.build(key)
        seq_low = rows[("minife-7.2GB", machine.num_cores)]
        rand_low = rows[("gups-4GB", machine.num_cores)]
        # Sequential: flat near tier beats flat far tier everywhere.
        assert seq_low["HBM"] > seq_low["DRAM"]
        # Random at 1 thread/core: the lower-latency tier wins.
        far_faster = (
            machine.far_device().idle_latency_ns
            <= machine.near_device().idle_latency_ns
        )
        assert rand_low["best"] == ("DRAM" if far_faster else "HBM")
    print(exhibit.render())
