"""Fig. 4d: Graph500 TEPS vs graph size, three configurations.

Shape: DRAM best throughout; its advantage over cache mode grows to
~1.3x on the largest graphs.
"""

import pytest

from repro.figures.fig4 import generate_d


def test_fig4d_graph500(benchmark, runner, record_exhibit):
    exhibit = benchmark(generate_d, runner)
    record_exhibit(exhibit)
    sizes = exhibit.data["sizes_gb"]
    dram = dict(zip(sizes, exhibit.data["DRAM"]))
    cache = dict(zip(sizes, exhibit.data["Cache Mode"]))
    for size in sizes:
        for other in ("HBM", "Cache Mode"):
            value = dict(zip(sizes, exhibit.data[other]))[size]
            if value is not None:
                assert dram[size] >= value
    assert dram[35.0] / cache[35.0] == pytest.approx(1.3, rel=0.15)
    # Absolute scale: 1-2 x 10^8 TEPS.
    assert 0.5e8 <= dram[8.8] <= 2.5e8
    print(exhibit.render())
