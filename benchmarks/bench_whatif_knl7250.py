"""What-if: the paper's conclusions on Cori's KNL 7250 (68 cores @ 1.4 GHz).

Section VI argues the conclusions "can be generalized to other
heterogeneous memory systems with similar characteristics".  This bench
replays the core comparisons on the 7250 machine model: every qualitative
conclusion (HBM for sequential, DRAM for random, SMT rescuing HBM) must
survive the machine change.
"""

import pytest

from repro.core.configs import ConfigName
from repro.engine.batch import BatchEvaluator
from repro.machine.presets import knl7250
from repro.util.tables import TextTable
from repro.workloads.gups import GUPS
from repro.workloads.minife import MiniFE
from repro.workloads.xsbench import XSBench


def run_whatif():
    # One columnar evaluation over the full 12-cell comparison grid
    # (bit-identical to the historical per-cell ExperimentRunner loop).
    evaluator = BatchEvaluator(knl7250())
    cores = evaluator.machine.num_cores
    trio = ConfigName.paper_trio()
    rows = [
        ("minife", MiniFE.from_matrix_gb(7.2), cores),
        ("gups", GUPS.from_table_gb(8.0), cores),
        ("xsbench-1t", XSBench.from_problem_gb(11.3), cores),
        ("xsbench-4t", XSBench.from_problem_gb(11.3), 4 * cores),
    ]
    cells = [
        (workload, config, threads)
        for _, workload, threads in rows
        for config in trio
    ]
    records = evaluator.evaluate(cells).records()
    return {
        name: {
            config: records[row * len(trio) + j].metric
            for j, config in enumerate(trio)
        }
        for row, (name, _, _) in enumerate(rows)
    }


def test_whatif_knl7250(benchmark, record_text):
    results = benchmark(run_whatif)
    table = TextTable(
        ["workload"] + [c.value for c in ConfigName.paper_trio()],
        title="What-if: Xeon Phi 7250 (68 cores @ 1.4 GHz, Cori)",
    )
    for name, values in results.items():
        table.add_row(
            [name]
            + [
                "-" if values[c] is None else f"{values[c]:.4g}"
                for c in ConfigName.paper_trio()
            ]
        )
    text = table.render()
    record_text("whatif_knl7250", text)
    print(text)
    # The paper's conclusions generalize to the second machine:
    minife = results["minife"]
    assert minife[ConfigName.HBM] > 2.5 * minife[ConfigName.DRAM]
    gups = results["gups"]
    assert gups[ConfigName.DRAM] >= gups[ConfigName.HBM]
    xs1, xs4 = results["xsbench-1t"], results["xsbench-4t"]
    assert xs1[ConfigName.DRAM] > xs1[ConfigName.HBM]
    assert xs4[ConfigName.HBM] > xs4[ConfigName.DRAM]
