"""Fig. 4b: MiniFE CG MFLOPS vs matrix size, three configurations.

Shape: HBM ~3x DRAM; cache-mode improvement collapses toward ~1.05x at
nearly twice the HBM capacity (28.8 GB).
"""

import pytest

from repro.figures.fig4 import generate_b


def test_fig4b_minife(benchmark, runner, record_exhibit):
    exhibit = benchmark(generate_b, runner)
    record_exhibit(exhibit)
    improvements = [v for v in exhibit.data["hbm_improvement"] if v is not None]
    assert all(2.6 <= v <= 3.5 for v in improvements)
    cache_imp = dict(
        zip(exhibit.data["sizes_gb"], exhibit.data["cache_improvement"])
    )
    assert cache_imp[3.6] > 2.3
    assert cache_imp[28.8] == pytest.approx(1.05, abs=0.15)
    # Absolute scale: paper's y-axis tops around 1.5e4 CG MFLOPS.
    hbm = dict(zip(exhibit.data["sizes_gb"], exhibit.data["HBM"]))
    assert 1.0e10 <= hbm[7.2] <= 1.8e10
    print(exhibit.render())
