"""Ablation: hybrid MCDRAM mode (described but not evaluated in the paper).

Hybrid mode splits MCDRAM into a flat partition and a cache partition.
For a problem that fits the flat partition it behaves like a small HBM;
for larger problems the allocation overflows to (cached) DDR.  The sweep
shows where hybrid beats each pure mode.
"""

import pytest

from repro.core.configs import ConfigName, make_config
from repro.core.runner import ExperimentRunner
from repro.util.tables import TextTable
from repro.workloads.minife import MiniFE

SIZES_GB = (3.6, 7.2, 10.0, 14.4)
CONFIGS = (
    ConfigName.DRAM,
    ConfigName.HBM,
    ConfigName.CACHE,
    ConfigName.HYBRID,
)


def run_ablation(runner: ExperimentRunner):
    rows = {}
    for gb in SIZES_GB:
        workload = MiniFE.from_matrix_gb(gb)
        rows[gb] = {
            name: runner.run(workload, make_config(name), 64).metric
            for name in CONFIGS
        }
    return rows


def test_ablation_hybrid_mode(benchmark, runner, record_text):
    rows = benchmark(run_ablation, runner)
    table = TextTable(
        ["Matrix (GB)"] + [c.value for c in CONFIGS],
        title="Ablation: hybrid mode (50/50), MiniFE CG MFLOPS",
    )
    for gb, values in rows.items():
        table.add_row(
            [f"{gb:g}"]
            + ["-" if values[c] is None else f"{values[c]:.3g}" for c in CONFIGS]
        )
    text = table.render()
    record_text("ablation_hybrid_mode", text)
    print(text)
    # Fitting the 8 GiB flat partition: hybrid ~= HBM.
    small = rows[3.6]
    assert small[ConfigName.HYBRID] == pytest.approx(
        small[ConfigName.HBM], rel=0.15
    )
    # Beyond the flat partition, hybrid degrades below pure HBM but stays
    # above pure DRAM (overflow lands in cached DDR).
    large = rows[14.4]
    assert large[ConfigName.HYBRID] < large[ConfigName.HBM]
    assert large[ConfigName.HYBRID] > large[ConfigName.DRAM]
