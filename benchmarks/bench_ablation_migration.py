"""Ablation: dynamic hot-page migration vs the paper's static placements.

The road the paper's future work points down: instead of binding whole
applications (or structures) once, an AutoHBW-style runtime migrates hot
pages into HBM per epoch.  The study contrasts the two access classes:

* Zipf-skewed access (graph-analytics-like): migration finds the hot set
  and serves most accesses from HBM — dynamic placement pays.
* uniform access (GUPS-like): there is no hot set; the hit rate pins at
  the capacity ratio and migration traffic is pure overhead — the
  paper's static DRAM binding remains right.
"""

import pytest

from repro.memory.migration import (
    MigrationPolicy,
    simulate_migration,
    uniform_page_weights,
    zipfian_page_weights,
)
from repro.util.tables import TextTable

N_PAGES = 20_000
HBM_PAGES = 2_000  # 10% capacity ratio, like 16 GB vs 160 GB of data


def run_ablation():
    policy = MigrationPolicy(hbm_pages=HBM_PAGES, budget_pages_per_epoch=1000)
    zipf = simulate_migration(
        zipfian_page_weights(N_PAGES), policy, epochs=25, seed=11
    )
    uniform = simulate_migration(
        uniform_page_weights(N_PAGES), policy, epochs=25, seed=11
    )
    return zipf, uniform


def test_ablation_migration(benchmark, record_text):
    zipf, uniform = benchmark(run_ablation)
    table = TextTable(
        ["access pattern", "HBM hit fraction", "pages migrated",
         "migration traffic", "converged by epoch"],
        title=(
            f"Ablation: hot-page migration, {N_PAGES} pages, "
            f"{HBM_PAGES} HBM pages (10%)"
        ),
    )
    for name, outcome in (("zipf (skew 0.99)", zipf), ("uniform", uniform)):
        table.add_row(
            [
                name,
                f"{outcome.hbm_hit_fraction:.1%}",
                outcome.migrated_pages,
                f"{outcome.migration_traffic_bytes / 1e6:.1f} MB",
                outcome.steady_state_epoch,
            ]
        )
    text = table.render()
    record_text("ablation_migration", text)
    print(text)
    assert zipf.hbm_hit_fraction > 0.6
    assert uniform.hbm_hit_fraction < 0.2
    assert zipf.converged
