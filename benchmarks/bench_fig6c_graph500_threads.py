"""Fig. 6c: Graph500 TEPS vs thread count.

Shape: ~1.5x at 128 threads; performance declines past the optimum; the
single best (config, threads) point is DRAM at 128 threads.
"""

import pytest

from repro.figures.fig6 import generate_c


def test_fig6c_graph500_threads(benchmark, runner, record_exhibit):
    exhibit = benchmark(generate_c, runner)
    record_exhibit(exhibit)
    threads = exhibit.data["threads"]
    dram_speedup = dict(zip(threads, exhibit.data["speedup_vs_64"]["DRAM"]))
    assert dram_speedup[128] == pytest.approx(1.5, rel=0.1)
    assert dram_speedup[128] > dram_speedup[192] > dram_speedup[256]
    best = max(
        (v, name, t)
        for name in ("DRAM", "HBM", "Cache Mode")
        for t, v in zip(threads, exhibit.data[name])
        if v is not None
    )
    assert (best[1], best[2]) == ("DRAM", 128)
    print(exhibit.render())
