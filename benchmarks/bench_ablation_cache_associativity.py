"""Ablation: direct-mapped vs 8-way MCDRAM cache.

The paper blames the cache-mode degradation on the direct mapping scheme
("which results in higher capacity conflicts when data size increases").
This ablation replays the Fig. 2 STREAM sweep with an 8-way organization
to isolate how much of the drop is conflicts (recoverable) vs capacity
(not).
"""

import pytest

from repro.core.configs import ConfigName, make_config
from repro.core.sweep import size_sweep
from repro.util.tables import TextTable
from repro.workloads.stream import StreamBenchmark

SIZES_GB = (8.0, 11.4, 14.0, 16.0, 22.8, 32.0)


def run_ablation(runner):
    direct = size_sweep(
        runner,
        lambda gb: StreamBenchmark(size_bytes=int(gb * 1e9)),
        SIZES_GB,
        configs=[make_config(ConfigName.CACHE, cache_associativity=1)],
        title="direct-mapped",
    )
    assoc = size_sweep(
        runner,
        lambda gb: StreamBenchmark(size_bytes=int(gb * 1e9)),
        SIZES_GB,
        configs=[make_config(ConfigName.CACHE, cache_associativity=8)],
        title="8-way",
    )
    return direct, assoc


def test_ablation_cache_associativity(benchmark, runner, record_text):
    direct, assoc = benchmark(run_ablation, runner)
    d = {x: direct.value(x, ConfigName.CACHE) for x in direct.xs}
    a = {x: assoc.value(x, ConfigName.CACHE) for x in assoc.xs}
    table = TextTable(
        ["Size (GB)", "direct-mapped (GB/s)", "8-way (GB/s)", "recovered"],
        title="Ablation: MCDRAM cache organization (STREAM triad)",
    )
    for x in SIZES_GB:
        table.add_row(
            [f"{x:g}", f"{d[x] / 1e9:.1f}", f"{a[x] / 1e9:.1f}",
             f"{a[x] / d[x]:.2f}x"]
        )
    text = table.render()
    record_text("ablation_cache_associativity", text)
    print(text)
    # The below-capacity conflict drop (11.4 GB point) is an artifact of
    # direct mapping: associativity recovers ~2x there...
    assert a[11.4] / d[11.4] > 1.8
    # ...but not the capacity-driven decline beyond 16 GiB (the gain past
    # capacity is bounded).
    assert a[32.0] / d[32.0] < 1.8
