"""Ablation: page interleaving for problems larger than either memory.

Section IV-C: "On platforms with similar ratio between DRAM and HBM, the
only way to run some large problems might be to use both HBM and DRAM
side-by-side, e.g., setting HBM in flat mode and interleaving memory
allocation between the two memories."  This ablation runs a STREAM
problem that exceeds the 96 GiB DDR node alone: only the interleave
configuration is feasible, and its bandwidth lands between DRAM and HBM
(both devices serve their page share concurrently).
"""

import pytest

from repro.core.configs import ConfigName, make_config
from repro.core.runner import ExperimentRunner
from repro.util.tables import TextTable
from repro.workloads.stream import StreamBenchmark

SIZES_GB = (40.0, 80.0, 100.0, 108.0)
CONFIGS = (ConfigName.DRAM, ConfigName.HBM, ConfigName.INTERLEAVE)


def run_ablation(runner: ExperimentRunner):
    rows = {}
    for gb in SIZES_GB:
        workload = StreamBenchmark(size_bytes=int(gb * 1e9))
        rows[gb] = {
            name: runner.run(workload, make_config(name), 64).metric
            for name in CONFIGS
        }
    return rows


def test_ablation_interleave(benchmark, runner, record_text):
    rows = benchmark(run_ablation, runner)
    table = TextTable(
        ["Size (GB)"] + [c.value for c in CONFIGS],
        title="Ablation: interleaving as capacity augmentation (STREAM GB/s)",
    )
    for gb, values in rows.items():
        table.add_row(
            [f"{gb:g}"]
            + [
                "-" if values[c] is None else f"{values[c] / 1e9:.1f}"
                for c in CONFIGS
            ]
        )
    text = table.render()
    record_text("ablation_interleave", text)
    print(text)
    large = rows[108.0]
    # 108 GB exceeds both the 16 GiB HBM node and the 96 GiB DDR node:
    # only interleaving runs at all — HBM augments capacity.
    assert large[ConfigName.DRAM] is None
    assert large[ConfigName.HBM] is None
    assert large[ConfigName.INTERLEAVE] is not None
    # Where everything fits, interleave lands between the pure bindings.
    mid = rows[40.0]
    assert mid[ConfigName.DRAM] < mid[ConfigName.INTERLEAVE]
