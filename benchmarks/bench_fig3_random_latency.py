"""Fig. 3: TinyMemBench dual random read latency, DRAM vs HBM.

Paper series reproduced: ~10 ns below 1 MB, ~200 ns tier to 64 MB, growth
beyond 128 MB; DRAM 15-20 % faster with the gap peaking just above the
tile L2 size.
"""

import pytest

from repro.figures.fig3 import generate


def test_fig3_dual_random_read_latency(benchmark, record_exhibit):
    exhibit = benchmark(generate)
    record_exhibit(exhibit)
    by_block = dict(zip(exhibit.data["blocks"], exhibit.data["dram_ns"]))
    assert by_block[512 * 1024] == pytest.approx(10.0, abs=1.0)
    assert 150 <= by_block[16 << 20] <= 260
    assert by_block[1 << 30] > by_block[64 << 20] + 150
    gaps = dict(zip(exhibit.data["blocks"], exhibit.data["gap_percent"]))
    big_gaps = {b: g for b, g in gaps.items() if b > (1 << 20)}
    assert all(10 <= g <= 23 for g in big_gaps.values())
    assert max(big_gaps, key=big_gaps.get) == 2 << 20  # peak just above L2
    print(exhibit.render())
